package core

import (
	"fmt"
	"math"
	"sort"
)

// SnapshotItem is one entry of a partial top-k: the item's current
// guaranteed bounds and whether they have converged to an exact score.
type SnapshotItem struct {
	Key    int
	LB, UB float64
	// Resolved reports LB == UB: the score is exact, no further
	// stepping can move this item's bounds.
	Resolved bool
}

// Snapshot is a bounds-consistent view of a Runner between steps: the
// current top-k ordered by descending lower bound, the work done so
// far, and the state of the stopping conditions. Snapshots are
// monotone across steps — an item's LB never decreases and its UB
// never increases — because GRECA's cursor bounds only tighten as
// lists are consumed.
type Snapshot struct {
	// TopK is the current top-k by lower bound (fewer than k items
	// until k candidates have been buffered). For an unfinished run it
	// is the best currently guaranteed itemset, not necessarily the
	// final one.
	TopK []SnapshotItem
	// Stats is the work done so far; Stats.Stop is meaningful only
	// when Done.
	Stats AccessStats
	// Threshold is the best score an unseen item could still reach, as
	// of the last stopping check (0 before the first check).
	Threshold float64
	// KthLB is the k-th largest candidate lower bound at the last
	// stopping check (0 until k candidates exist).
	KthLB float64
	// Evaluated reports whether Threshold and KthLB have actually been
	// computed yet. GRECA evaluates them at every check, but the
	// baseline modes reach their first threshold evaluation later
	// (threshold-exact needs all affinities plus K exact items, TA
	// needs K resolved items, full-scan never evaluates them) — until
	// then the zero values would be indistinguishable from a converged
	// run.
	Evaluated bool
	// Done reports whether the run has terminated.
	Done bool
}

// BoundGap is Threshold − KthLB clamped at 0: how far the global
// threshold still exceeds the k-th lower bound. It shrinks toward 0 as
// the run converges (0 once the run is Done) and is +Inf while the
// bounds have not yet been Evaluated, so "stop when the gap is small
// enough" consumers never mistake an early frame for convergence.
func (s Snapshot) BoundGap() float64 {
	if s.Done {
		return 0
	}
	if !s.Evaluated {
		return math.Inf(1)
	}
	gap := s.Threshold - s.KthLB
	if gap < 0 {
		gap = 0
	}
	return gap
}

// stepper is one mode's resumable execution state. step advances one
// unit of work (one stopping check for the round-based modes) and
// reports termination; snapshot and result read the current state.
type stepper interface {
	step() bool
	snapshot() Snapshot
	result() Result
}

// Runner is a resumable execution of a Problem: the anytime form of
// Run. Callers alternate Step with Snapshot to consume progressively
// tightening partial top-k results, and may simply stop stepping to
// cancel — the Problem and its buffers stay intact (Release still
// applies when the caller owns pooled rows).
//
// One step is one stopping-check interval (CheckInterval round-robin
// sweeps) for ModeGRECA and ModeThresholdExact, one sweep for ModeTA,
// and one full list for ModeFullScan. Like Run, a Runner is not safe
// for concurrent use, and only one Runner (or Run) may be active per
// Problem at a time; creating a Runner rewinds the cursors.
type Runner struct {
	s    stepper
	done bool
}

// Runner builds a resumable execution of p in the given mode. Run is
// equivalent to Runner followed by stepping to completion, and is
// implemented exactly that way, so the two cannot diverge.
func (p *Problem) Runner(mode Mode) (*Runner, error) {
	if p.released {
		return nil, fmt.Errorf("core: Runner on a Problem whose buffers were Released")
	}
	p.reset()
	var s stepper
	switch mode {
	case ModeGRECA:
		s = newGrecaState(p)
	case ModeThresholdExact:
		s = newThresholdExactState(p)
	case ModeFullScan:
		s = newFullScanState(p)
	case ModeTA:
		s = newTAState(p)
	default:
		return nil, fmt.Errorf("core: unknown mode %d", int(mode))
	}
	return &Runner{s: s}, nil
}

// Step advances the run by up to n steps, stopping early on
// termination, and reports whether the run is done. n <= 0 is a no-op.
func (r *Runner) Step(n int) bool {
	for i := 0; i < n && !r.done; i++ {
		r.done = r.s.step()
	}
	return r.done
}

// Done reports whether the run has terminated.
func (r *Runner) Done() bool { return r.done }

// epsilonStepper is implemented by the modes that can certify an
// ε-approximate top-k mid-run.
type epsilonStepper interface {
	epsilonReached(eps float64) bool
}

// EpsilonReached reports whether the run's current state certifies an
// ε-approximate top-K: K candidates are buffered, and every item NOT
// among the top K — unseen (bounded by the global threshold) or
// buffered outside the top-k (bounded by its own upper bound) — is
// guaranteed to score less than eps above the k-th best lower bound.
// This is the exact termination condition (threshold + buffer)
// relaxed by eps, so eps = 0 recovers exactness and the certificate
// is sound for any buffered candidate state — unlike the bare
// Snapshot.BoundGap, which ignores buffered candidates' upper bounds.
//
// It returns false before the bounds are first evaluated, while fewer
// than K candidates exist, for non-positive eps, once the run is Done
// (the final result is exact; no approximation applies), and for
// modes without bound tracking (full scan). Cost: for GRECA, one
// float compare per check until the threshold gap is inside eps; the
// baseline modes re-derive their exact-seen ranking, mirroring what
// their own stopping checks already compute each sweep.
func (r *Runner) EpsilonReached(eps float64) bool {
	if r.done || eps <= 0 {
		return false
	}
	es, ok := r.s.(epsilonStepper)
	return ok && es.epsilonReached(eps)
}

// Snapshot returns the current bounds-consistent partial top-k. After
// the final step it describes the final result.
func (r *Runner) Snapshot() Snapshot { return r.s.snapshot() }

// Result returns the final result. It errors until Done.
func (r *Runner) Result() (Result, error) {
	if !r.done {
		return Result{}, fmt.Errorf("core: Result on a Runner that is not Done")
	}
	return r.s.result(), nil
}

// trace installs a TracePoint observer (ModeGRECA runners only; a
// no-op otherwise). Used by RunTraced.
func (r *Runner) trace(observe func(TracePoint)) {
	if gs, ok := r.s.(*grecaState); ok {
		gs.observe = observe
	}
}

// snapshotFromScores converts final ItemScores to snapshot items.
func snapshotFromScores(topK []ItemScore) []SnapshotItem {
	out := make([]SnapshotItem, len(topK))
	for i, is := range topK {
		out[i] = SnapshotItem{Key: is.Key, LB: is.LB, UB: is.UB, Resolved: is.LB == is.UB}
	}
	return out
}

// grecaState is the resumable form of Algorithm 1 with the incremental
// buffer strategy (see the package comment on runGRECA semantics in
// greca.go). One step runs round-robin sweeps up to and including the
// next stopping check.
type grecaState struct {
	p          *Problem
	ev         *evaluator
	st         AccessStats
	cands      []*candidate // indexed by item key; nil until seen
	alive      []*candidate
	checkEvery int
	prunedToK  bool
	// lastTh / lastKth are the stopping-check values as of the last
	// check, for snapshots and trace points; evaluated marks that they
	// have been computed at least once.
	lastTh, lastKth float64
	evaluated       bool
	observe         func(TracePoint)
	done            bool
	res             Result
	// slab backs candidate records in chunks (pointer-stable: full
	// chunks are replaced, never grown); sortBuf and kthBuf are the
	// per-check scratch for sortByLBInto / kthLowerBoundInto. Together
	// they keep the stepper's hot loop allocation-free in steady state.
	slab    []candidate
	slabPos int
	sortBuf []*candidate
	kthBuf  []*candidate
}

// newCandidate carves a candidate record out of the chunked slab.
func (s *grecaState) newCandidate(key int) *candidate {
	if s.slabPos == len(s.slab) {
		s.slab = make([]candidate, 128)
		s.slabPos = 0
	}
	c := &s.slab[s.slabPos]
	s.slabPos++
	*c = candidate{key: key, alive: true}
	return c
}

// sortedByLB returns the alive set ordered by descending lower bound,
// in state-owned scratch: valid only until the next call.
func (s *grecaState) sortedByLB() []*candidate {
	s.sortBuf = sortByLBInto(s.sortBuf, s.alive)
	return s.sortBuf
}

// kthLB returns the k-th largest alive lower bound via state-owned
// scratch.
func (s *grecaState) kthLB(k int) float64 {
	v, buf := kthLowerBoundInto(s.kthBuf, s.alive, k)
	s.kthBuf = buf
	return v
}

func newGrecaState(p *Problem) *grecaState {
	checkEvery := p.in.CheckInterval
	if checkEvery <= 0 {
		checkEvery = 1
	}
	return &grecaState{
		p:          p,
		ev:         newEvaluator(p),
		st:         AccessStats{TotalEntries: p.totalEntries},
		cands:      make([]*candidate, p.m),
		checkEvery: checkEvery,
	}
}

func (s *grecaState) emit() {
	if s.observe == nil {
		return
	}
	s.observe(TracePoint{
		Round:              s.st.Rounds,
		SequentialAccesses: s.st.SequentialAccesses,
		Threshold:          s.lastTh,
		KthLB:              s.lastKth,
		Alive:              len(s.alive),
	})
}

func (s *grecaState) step() bool {
	if s.done {
		return true
	}
	for {
		progressed := false
		for _, l := range s.p.lists {
			e, ok := l.Next()
			if !ok {
				continue
			}
			progressed = true
			s.st.SequentialAccesses++
			s.ev.observe(l, e)
			// Every item-keyed list entry makes the item a buffered
			// candidate: once any of its components has been read the
			// global threshold (which assumes cursor bounds for every
			// component) no longer covers it, so it must carry its own
			// bounds. Preference and agreement lists are item-keyed;
			// affinity lists are pair-keyed.
			if itemKeyed(l.Kind) && s.cands[e.Key] == nil {
				c := s.newCandidate(e.Key)
				s.cands[e.Key] = c
				s.alive = append(s.alive, c)
			}
		}
		if !progressed {
			// All lists exhausted: every bound is now exact.
			s.st.Rounds++
			s.st.Checks++
			s.st.Stop = StopExhausted
			s.ev.refreshAffinity()
			refreshBounds(s.ev, s.alive)
			s.lastTh = s.ev.threshold()
			s.lastKth = s.kthLB(min(s.p.in.K, len(s.alive)))
			s.evaluated = true
			s.emit()
			s.res = Result{TopK: finalTopK(s.sortedByLB(), s.p.in.K), Stats: s.st}
			s.done = true
			return true
		}
		s.st.Rounds++
		if s.st.Rounds%s.checkEvery != 0 {
			continue
		}
		s.st.Checks++

		s.ev.refreshAffinity()
		refreshBounds(s.ev, s.alive)
		if len(s.alive) < s.p.in.K {
			s.lastTh, s.lastKth = s.ev.threshold(), 0
			s.evaluated = true
			s.emit()
			return false // not enough candidates yet
		}
		kthLB := s.kthLB(s.p.in.K)
		th := s.ev.threshold()

		// Buffer condition, applied incrementally: prune candidates
		// whose UB is strictly below the k-th LB. Bounds only tighten
		// as cursors advance, so a pruned item can never re-qualify.
		pruned := prune(s.alive, kthLB, s.p.in.K)
		if len(pruned) < len(s.alive) {
			s.prunedToK = true
		}
		s.alive = pruned
		s.lastTh, s.lastKth = th, kthLB
		s.evaluated = true
		s.emit()

		// Termination. The threshold condition guards unseen items
		// (they are not in the buffer); the buffer condition holds
		// when the k-th LB is at least the UB of every candidate
		// outside the k selected by lower bound. Non-strict
		// comparison keeps exact score ties from forcing a full scan:
		// an item tied with the k-th at ub == lb == kthLB cannot
		// *exceed* any returned item, so the returned set is still a
		// correct top-k itemset (the paper's partial-order result).
		if th > kthLB {
			return false
		}
		sorted := s.sortedByLB()
		met := true
		for _, c := range sorted[s.p.in.K:] {
			if c.ub > kthLB {
				met = false
				break
			}
		}
		if !met {
			return false
		}
		if len(s.alive) > s.p.in.K || s.prunedToK {
			s.st.Stop = StopBuffer
		} else {
			s.st.Stop = StopThreshold
		}
		s.res = Result{TopK: toItemScores(sorted[:s.p.in.K]), Stats: s.st}
		s.done = true
		return true
	}
}

// epsilonReached mirrors the exact stopping conditions with an eps
// slack: K buffered candidates must exist (an ε-approximate top-k is
// still a top-K; certifying on a short buffer would return fewer
// items than every other mode requires), and the threshold condition
// (unseen items) and buffer condition (candidates outside the
// lower-bound top-k) must both hold within eps of the k-th lower
// bound. The cheap threshold comparison runs first, so the per-check
// cost of an ε-enabled run is one float compare until the run is
// actually near the stop.
func (s *grecaState) epsilonReached(eps float64) bool {
	if !s.evaluated || len(s.alive) < s.p.in.K {
		return false
	}
	// State is consistent here: step only returns at stopping checks,
	// where bounds were just refreshed and lastTh/lastKth recorded.
	if s.lastTh-s.lastKth >= eps {
		return false
	}
	sorted := s.sortedByLB()
	for _, c := range sorted[s.p.in.K:] {
		if c.ub-s.lastKth >= eps {
			return false
		}
	}
	return true
}

func (s *grecaState) snapshot() Snapshot {
	snap := Snapshot{
		Stats:     s.st,
		Threshold: s.lastTh,
		KthLB:     s.lastKth,
		Evaluated: s.evaluated,
		Done:      s.done,
	}
	if s.done {
		snap.TopK = snapshotFromScores(s.res.TopK)
		return snap
	}
	// Candidate bounds were refreshed at the last stopping check —
	// exactly where step returns — so the alive set is consistent.
	sorted := s.sortedByLB()
	k := s.p.in.K
	if k > len(sorted) {
		k = len(sorted)
	}
	snap.TopK = make([]SnapshotItem, k)
	for i, c := range sorted[:k] {
		snap.TopK[i] = SnapshotItem{Key: c.key, LB: c.lb, UB: c.ub, Resolved: c.lb == c.ub}
	}
	return snap
}

func (s *grecaState) result() Result { return s.res }

// thresholdExactState is the resumable conservative baseline: it only
// trusts fully known (exact) scores, stopping when k items are fully
// resolved and the k-th exact score dominates the threshold. One step
// advances through the next stopping check.
type thresholdExactState struct {
	p          *Problem
	ev         *evaluator
	st         AccessStats
	seen       map[int]struct{}
	checkEvery int
	lastTh     float64
	evaluated  bool
	done       bool
	res        Result
}

func newThresholdExactState(p *Problem) *thresholdExactState {
	checkEvery := p.in.CheckInterval
	if checkEvery <= 0 {
		checkEvery = 1
	}
	return &thresholdExactState{
		p:          p,
		ev:         newEvaluator(p),
		st:         AccessStats{TotalEntries: p.totalEntries},
		seen:       make(map[int]struct{}, 256),
		checkEvery: checkEvery,
	}
}

func (s *thresholdExactState) step() bool {
	if s.done {
		return true
	}
	for {
		progressed := false
		for _, l := range s.p.lists {
			e, ok := l.Next()
			if !ok {
				continue
			}
			progressed = true
			s.st.SequentialAccesses++
			s.ev.observe(l, e)
			if itemKeyed(l.Kind) {
				s.seen[e.Key] = struct{}{}
			}
		}
		if !progressed {
			s.st.Rounds++
			s.st.Checks++
			s.st.Stop = StopExhausted
			scores := s.ev.exactAll()
			s.res = Result{TopK: topKExact(scores, s.p.in.K), Stats: s.st}
			s.done = true
			return true
		}
		s.st.Rounds++
		if s.st.Rounds%s.checkEvery != 0 {
			continue
		}
		s.st.Checks++

		s.ev.refreshAffinity()
		if !s.ev.affinityFullyKnown() {
			return false
		}
		exact := s.exactSeen()
		if len(exact) < s.p.in.K {
			return false
		}
		kth := exact[s.p.in.K-1].LB
		th := s.ev.threshold()
		s.lastTh = th
		s.evaluated = true
		if th <= kth {
			// Unseen items cannot beat the k-th exact score; partially
			// seen items might, so also require their UBs dominated.
			ok := true
			for key := range s.seen {
				if s.ev.fullyKnown(key) {
					continue
				}
				if iv := s.ev.scoreItem(key); iv.Hi > kth {
					ok = false
					break
				}
			}
			if ok {
				s.st.Stop = StopThreshold
				s.res = Result{TopK: exact[:s.p.in.K], Stats: s.st}
				s.done = true
				return true
			}
		}
		return false
	}
}

// exactSeen collects the fully known seen items, sorted descending by
// exact score (ties by ascending key).
func (s *thresholdExactState) exactSeen() []ItemScore {
	exact := make([]ItemScore, 0, len(s.seen))
	for key := range s.seen {
		if !s.ev.fullyKnown(key) {
			continue
		}
		iv := s.ev.scoreItem(key)
		exact = append(exact, ItemScore{Key: key, LB: iv.Lo, UB: iv.Hi})
	}
	sort.Slice(exact, func(a, b int) bool {
		if exact[a].LB != exact[b].LB {
			return exact[a].LB > exact[b].LB
		}
		return exact[a].Key < exact[b].Key
	})
	return exact
}

// epsilonReached relaxes this baseline's exact stop by eps: k fully
// resolved items whose k-th exact score is within eps of both the
// unseen-item threshold and every partially seen item's upper bound.
func (s *thresholdExactState) epsilonReached(eps float64) bool {
	if !s.evaluated {
		return false
	}
	exact := s.exactSeen()
	if len(exact) < s.p.in.K {
		return false
	}
	kth := exact[s.p.in.K-1].LB
	if s.lastTh-kth >= eps {
		return false
	}
	for key := range s.seen {
		if s.ev.fullyKnown(key) {
			continue
		}
		if s.ev.scoreItem(key).Hi-kth >= eps {
			return false
		}
	}
	return true
}

func (s *thresholdExactState) snapshot() Snapshot {
	snap := Snapshot{Stats: s.st, Threshold: s.lastTh, Evaluated: s.evaluated, Done: s.done}
	if s.done {
		snap.TopK = snapshotFromScores(s.res.TopK)
		return snap
	}
	// This baseline only ever trusts exact scores, so its partial
	// top-k is the best fully resolved items so far (empty until the
	// affinity components are all known).
	if !s.ev.affinityFullyKnown() {
		return snap
	}
	exact := s.exactSeen()
	k := s.p.in.K
	if k > len(exact) {
		k = len(exact)
	}
	snap.TopK = snapshotFromScores(exact[:k])
	if len(exact) >= s.p.in.K {
		snap.KthLB = exact[s.p.in.K-1].LB
	}
	return snap
}

func (s *thresholdExactState) result() Result { return s.res }

// fullScanState reads every entry of every list and ranks by exact
// score. One step drains one list; the final step computes the
// ranking. Its snapshots carry no partial top-k: exact scores exist
// only once every component is known.
type fullScanState struct {
	p    *Problem
	ev   *evaluator
	st   AccessStats
	next int // index of the next list to drain
	done bool
	res  Result
}

func newFullScanState(p *Problem) *fullScanState {
	return &fullScanState{
		p:  p,
		ev: newEvaluator(p),
		st: AccessStats{TotalEntries: p.totalEntries, Stop: StopExhausted},
	}
}

func (s *fullScanState) step() bool {
	if s.done {
		return true
	}
	l := s.p.lists[s.next]
	for {
		e, ok := l.Next()
		if !ok {
			break
		}
		s.st.SequentialAccesses++
		s.ev.observe(l, e)
	}
	s.next++
	if s.next < len(s.p.lists) {
		return false
	}
	scores := s.ev.exactAll()
	s.res = Result{TopK: topKExact(scores, s.p.in.K), Stats: s.st}
	s.done = true
	return true
}

func (s *fullScanState) snapshot() Snapshot {
	snap := Snapshot{Stats: s.st, Done: s.done}
	if s.done {
		snap.TopK = snapshotFromScores(s.res.TopK)
	}
	return snap
}

func (s *fullScanState) result() Result { return s.res }

// taState is the resumable naive Threshold Algorithm adaptation:
// round-robin sorted accesses over the preference lists only, with
// every newly encountered item fully resolved via random accesses. One
// step is one sweep (every sweep checks the stopping condition).
type taState struct {
	p      *Problem
	ev     *evaluator
	st     AccessStats
	raCost int
	exact  map[int]float64
	lastTh float64
	evald  bool
	done   bool
	res    Result
}

func newTAState(p *Problem) *taState {
	T := 0
	if p.useAffinity {
		T = p.in.Agg.NumPeriods()
	}
	raCost := RAPerItem(p.g, T)
	if p.useAgreement {
		raCost += p.nPairs // one agreement fetch per pair
	}
	return &taState{
		p:      p,
		ev:     newEvaluator(p),
		st:     AccessStats{TotalEntries: p.totalEntries},
		raCost: raCost,
		exact:  make(map[int]float64, 256),
	}
}

func (s *taState) step() bool {
	if s.done {
		return true
	}
	progressed := false
	for _, l := range s.p.prefList {
		e, ok := l.Next()
		if !ok {
			continue
		}
		progressed = true
		s.st.SequentialAccesses++
		s.ev.observe(l, e)
		if _, done := s.exact[e.Key]; !done {
			s.st.RandomAccesses += s.raCost
			s.exact[e.Key] = s.ev.exactScore(e.Key)
		}
	}
	s.st.Rounds++
	s.st.Checks++
	if len(s.exact) >= s.p.in.K {
		topK := topKFromMap(s.exact, s.p.in.K)
		kth := topK[s.p.in.K-1].LB
		// TA threshold: the best score an unseen item could have
		// given the preference cursors. Affinities are known
		// exactly (random accesses fetched them), so the interval
		// threshold is evaluated with point affinities.
		s.ev.refreshAffinityExact()
		th := s.ev.threshold()
		s.lastTh = th
		s.evald = true
		if th <= kth {
			s.st.Stop = StopThreshold
			s.res = Result{TopK: topK, Stats: s.st}
			s.done = true
			return true
		}
	}
	if !progressed {
		s.st.Stop = StopExhausted
		s.res = Result{TopK: topKFromMap(s.exact, s.p.in.K), Stats: s.st}
		s.done = true
		return true
	}
	return false
}

// epsilonReached relaxes TA's stop by eps. Every seen item is fully
// resolved on sight (random accesses), so items beyond the top-k in
// the exact map already score at most the k-th — only the unseen-item
// threshold can exceed it.
func (s *taState) epsilonReached(eps float64) bool {
	if !s.evald || len(s.exact) < s.p.in.K {
		return false
	}
	topK := topKFromMap(s.exact, s.p.in.K)
	return s.lastTh-topK[s.p.in.K-1].LB < eps
}

func (s *taState) snapshot() Snapshot {
	snap := Snapshot{Stats: s.st, Threshold: s.lastTh, Evaluated: s.evald, Done: s.done}
	if s.done {
		snap.TopK = snapshotFromScores(s.res.TopK)
		return snap
	}
	k := s.p.in.K
	if k > len(s.exact) {
		k = len(s.exact)
	}
	if k > 0 {
		snap.TopK = snapshotFromScores(topKFromMap(s.exact, k))
		if len(s.exact) >= s.p.in.K {
			snap.KthLB = snap.TopK[s.p.in.K-1].LB
		}
	}
	return snap
}

func (s *taState) result() Result { return s.res }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
