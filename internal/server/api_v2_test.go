package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestV1AliasesServeIdentically: every legacy route and its /v1 form
// answer the same requests with the same payloads.
func TestV1AliasesServeIdentically(t *testing.T) {
	w := testWorld(t)
	_, ts := newTestServer(t, Config{})
	group := w.Participants()[:3]
	body := fmt.Sprintf(`{"group":[%d,%d,%d],"k":4,"num_items":120}`, group[0], group[1], group[2])

	legacyStatus, legacy := postJSON(t, ts.URL+"/recommend", body)
	v1Status, v1 := postJSON(t, ts.URL+"/v1/recommend", body)
	if legacyStatus != http.StatusOK || v1Status != http.StatusOK {
		t.Fatalf("statuses %d / %d, want 200 / 200 (%s / %s)", legacyStatus, v1Status, legacy, v1)
	}
	if string(legacy) != string(v1) {
		t.Errorf("alias responses diverge:\nlegacy %s\nv1     %s", legacy, v1)
	}

	for _, route := range []string{"/healthz", "/v1/healthz", "/stats", "/v1/stats"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatalf("GET %s: %v", route, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", route, resp.StatusCode)
		}
	}
}

// TestMethodNotAllowedCarriesAllow: unknown methods on known routes
// return 405 with the Allow header naming the supported method — they
// must not fall through the decoder as 400s.
func TestMethodNotAllowedCarriesAllow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		method, route, allow string
	}{
		{http.MethodGet, "/recommend", "POST"},
		{http.MethodDelete, "/recommend", "POST"},
		{http.MethodGet, "/v1/recommend", "POST"},
		{http.MethodPut, "/v1/recommend/batch", "POST"},
		{http.MethodGet, "/v1/recommend/stream", "POST"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodPost, "/v1/stats", "GET"},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.route, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.route, strings.NewReader(`{"group":[1]}`))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("status = %d, want 405", resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != tc.allow {
				t.Errorf("Allow = %q, want %q", got, tc.allow)
			}
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != "method_not_allowed" {
				t.Errorf("error body code = %q (%v), want method_not_allowed", e.Code, err)
			}
		})
	}
}

// TestErrorCodes: client-shaped failures carry machine-readable codes
// beside the human-readable message, on both the plain and batch
// routes.
func TestErrorCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, code string
	}{
		{"empty group", `{"group":[]}`, "empty_group"},
		{"missing group", `{"k":3}`, "empty_group"},
		{"duplicate member", `{"group":[1,1]}`, "duplicate_member"},
		{"unknown user", `{"group":[99999]}`, "unknown_user"},
		{"period out of range", `{"group":[1],"period":99}`, "period_out_of_range"},
		{"k exceeds candidates", `{"group":[1],"k":50,"num_items":10}`, "k_exceeds_candidates"},
		{"malformed json", `{"group": [1,2`, "bad_request"},
		{"negative progress_every", `{"group":[1],"progress_every":-1}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, data := postJSON(t, ts.URL+"/v1/recommend", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", status, data)
			}
			var e errorResponse
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("unmarshal %q: %v", data, err)
			}
			if e.Code != tc.code {
				t.Errorf("code = %q, want %q (error %q)", e.Code, tc.code, e.Error)
			}
			if e.Error == "" {
				t.Error("message is empty")
			}
		})
	}

	// The batch route reports per-request codes in its results.
	status, data := postJSON(t, ts.URL+"/v1/recommend/batch",
		`{"requests":[{"group":[]},{"group":[1,1]},{"group":[1],"period":99}]}`)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", status, data)
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatalf("unmarshal batch: %v", err)
	}
	wantCodes := []string{"empty_group", "duplicate_member", "period_out_of_range"}
	for i, want := range wantCodes {
		if br.Results[i].Code != want {
			t.Errorf("batch result %d code = %q, want %q", i, br.Results[i].Code, want)
		}
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  []byte
}

// readSSE parses SSE events off a stream until EOF or maxEvents.
func readSSE(t *testing.T, r io.Reader, maxEvents int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if len(events) == maxEvents {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestServeStreamSSE is the SSE e2e smoke: streaming a slow group
// yields at least two progress frames before the terminal result
// frame, frames tighten monotonically, and the terminal result matches
// the frames' final state.
func TestServeStreamSSE(t *testing.T) {
	w := testWorld(t)
	_, ts := newTestServer(t, Config{})
	group := w.Participants()[:3]
	// A large pool with per-round checks keeps the runner stepping long
	// enough to observe genuine intermediate frames.
	body := fmt.Sprintf(`{"group":[%d,%d,%d],"k":8,"num_items":450}`, group[0], group[1], group[2])

	resp, err := http.Post(ts.URL+"/v1/recommend/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	events := readSSE(t, resp.Body, 0)
	if len(events) < 3 {
		t.Fatalf("only %d events; want >= 2 progress + result", len(events))
	}
	last := events[len(events)-1]
	if last.event != "result" {
		t.Fatalf("terminal event = %q, want result (%s)", last.event, last.data)
	}
	progress := events[:len(events)-1]
	if len(progress) < 2 {
		t.Fatalf("only %d progress frames before the terminal frame, want >= 2", len(progress))
	}
	var prevChecks int
	var lastFrame progressFrame
	for i, ev := range progress {
		if ev.event != "progress" {
			t.Fatalf("event %d = %q, want progress", i, ev.event)
		}
		var f progressFrame
		if err := json.Unmarshal(ev.data, &f); err != nil {
			t.Fatalf("frame %d: %v (%s)", i, err, ev.data)
		}
		if f.Checks < prevChecks {
			t.Errorf("frame %d: checks went backward %d -> %d", i, prevChecks, f.Checks)
		}
		prevChecks = f.Checks
		for _, it := range f.Items {
			if it.UpperBound < it.Score {
				t.Errorf("frame %d: item %d UB %g < score %g", i, it.Item, it.UpperBound, it.Score)
			}
		}
		lastFrame = f
	}
	if !lastFrame.Done {
		t.Error("last progress frame not marked done")
	}
	if lastFrame.BoundGap != 0 {
		t.Errorf("terminal frame bound gap = %g, want 0", lastFrame.BoundGap)
	}

	// The terminal result matches a direct (coalesced) call for the
	// same request — streaming changes delivery, not the answer.
	var streamed recommendResponse
	if err := json.Unmarshal(last.data, &streamed); err != nil {
		t.Fatalf("result frame: %v", err)
	}
	status, direct := postJSON(t, ts.URL+"/v1/recommend", body)
	if status != http.StatusOK {
		t.Fatalf("direct status = %d", status)
	}
	var plain recommendResponse
	if err := json.Unmarshal(direct, &plain); err != nil {
		t.Fatal(err)
	}
	if len(streamed.Items) != len(plain.Items) {
		t.Fatalf("streamed %d items, direct %d", len(streamed.Items), len(plain.Items))
	}
	for i := range plain.Items {
		if streamed.Items[i] != plain.Items[i] {
			t.Errorf("item %d: streamed %+v, direct %+v", i, streamed.Items[i], plain.Items[i])
		}
	}
}

// TestServeStreamProgressEvery: frame thinning keeps the terminal
// frame and reduces the progress count.
func TestServeStreamProgressEvery(t *testing.T) {
	w := testWorld(t)
	_, ts := newTestServer(t, Config{})
	group := w.Participants()[:3]
	base := fmt.Sprintf(`{"group":[%d,%d,%d],"k":8,"num_items":450`, group[0], group[1], group[2])

	count := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/recommend/stream", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		events := readSSE(t, resp.Body, 0)
		if len(events) == 0 || events[len(events)-1].event != "result" {
			t.Fatalf("no terminal result frame for %s", body)
		}
		return len(events) - 1
	}
	every1 := count(base + `}`)
	every16 := count(base + `,"progress_every":16}`)
	if every16 >= every1 {
		t.Errorf("progress_every=16 produced %d frames, unthinned %d", every16, every1)
	}
	if every16 < 1 {
		t.Error("thinning dropped every progress frame including the terminal one")
	}
}

// TestServeStreamErrorEvent: engine-side failures surface before the
// lazily written SSE headers, so even errors the decoder cannot catch
// (K vs the group's actual candidate pool) still map to plain 400s
// with their code.
func TestServeStreamErrorEvent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// K exceeding the candidate pool passes the decoder (K and
	// num_items are individually valid) and fails at problem build.
	resp, err := http.Post(ts.URL+"/v1/recommend/stream", "application/json",
		strings.NewReader(`{"group":[1],"k":50,"num_items":10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 before streaming begins", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != "k_exceeds_candidates" {
		t.Errorf("code = %q (%v), want k_exceeds_candidates", e.Code, err)
	}
}

// TestServeStreamShedsOverload: MaxPending bounds concurrent streams
// too — beyond it, new streams get 429 + Retry-After instead of
// pinning yet another runner.
func TestServeStreamShedsOverload(t *testing.T) {
	w := testWorld(t)
	s, ts := newTestServer(t, Config{MaxPending: 1})
	s.streamFrameDelay = 2 * time.Millisecond
	group := w.Participants()[:3]
	body := fmt.Sprintf(`{"group":[%d,%d,%d],"k":8,"num_items":450}`, group[0], group[1], group[2])

	// Occupy the only stream slot, holding it open by not reading.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/recommend/stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp1, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first stream status = %d", resp1.StatusCode)
	}

	// The second concurrent stream is shed.
	resp2, err := http.Post(ts.URL+"/v1/recommend/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("shed stream missing Retry-After")
	}
	var e errorResponse
	if err := json.NewDecoder(resp2.Body).Decode(&e); err != nil || e.Code != "overloaded" {
		t.Errorf("code = %q (%v), want overloaded", e.Code, err)
	}

	// Draining the first stream frees the slot.
	io.Copy(io.Discard, resp1.Body)
	deadline := time.Now().Add(5 * time.Second)
	for s.activeStreams.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream slot never freed")
		}
		time.Sleep(time.Millisecond)
	}
	resp3, err := http.Post(ts.URL+"/v1/recommend/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("post-drain stream status = %d, want 200", resp3.StatusCode)
	}
}

// TestServeStreamCancelMidFlight cancels the client context after the
// first progress frame and proves the server survives: the stream
// terminates, the cancel is counted, and subsequent requests — which
// reuse the pooled problem buffers the cancelled run must have
// released — still serve correct responses.
func TestServeStreamCancelMidFlight(t *testing.T) {
	w := testWorld(t)
	s, ts := newTestServer(t, Config{})
	// Pace the frames so the run reliably outlives the client's
	// mid-stream hangup.
	s.streamFrameDelay = 2 * time.Millisecond
	group := w.Participants()[:3]
	body := fmt.Sprintf(`{"group":[%d,%d,%d],"k":8,"num_items":450}`, group[0], group[1], group[2])

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/recommend/stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one progress frame, then hang up mid-stream.
	events := readSSE(t, resp.Body, 1)
	if len(events) != 1 || events[0].event != "progress" {
		cancel()
		resp.Body.Close()
		t.Fatalf("first event = %+v, want a progress frame", events)
	}
	cancel()
	resp.Body.Close()

	// The handler observes the disconnect and records the cancel.
	deadline := time.Now().Add(5 * time.Second)
	for s.streamCancels.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream cancel never observed by the server")
		}
		time.Sleep(time.Millisecond)
	}

	// The world stays healthy: the cancelled run released its pooled
	// rows, so fresh requests (including a fresh stream) are served
	// correctly and byte-identically to each other.
	status1, data1 := postJSON(t, ts.URL+"/v1/recommend", body)
	status2, data2 := postJSON(t, ts.URL+"/v1/recommend", body)
	if status1 != http.StatusOK || status2 != http.StatusOK {
		t.Fatalf("post-cancel statuses %d / %d (%s / %s)", status1, status2, data1, data2)
	}
	if string(data1) != string(data2) {
		t.Errorf("post-cancel responses diverge:\n%s\n%s", data1, data2)
	}
}
