package affinity

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/shard"
)

// TestBuildModelShardedIdentical: partitioning the pair tables by
// lower user changes where entries live, never any affinity value —
// every model read answers identically for any shard count, including
// after incremental AppendPeriod maintenance.
func TestBuildModelShardedIdentical(t *testing.T) {
	users := make([]dataset.UserID, 10)
	for i := range users {
		users[i] = dataset.UserID(i)
	}
	tl := SegmentUniform(0, 400, 4)
	src := stubSource{
		static: func(u, v dataset.UserID) float64 { return float64(u*3 + v) },
		periodic: func(u, v dataset.UserID, p Period) float64 {
			return float64(int(u+v)%5) + float64(p.Start)/400
		},
	}
	baseline, err := BuildModel(users, tl, src, src)
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	for _, n := range []int{1, 4, 16} {
		m, _ := shard.New(n)
		sharded, err := BuildModelSharded(users, tl, src, src, m)
		if err != nil {
			t.Fatalf("BuildModelSharded(%d): %v", n, err)
		}
		// Exercise the incremental-maintenance path on both models.
		next := Period{Start: 400, End: 500}
		if err := baseline.AppendPeriod(next); err != nil {
			t.Fatalf("baseline AppendPeriod: %v", err)
		}
		if err := sharded.AppendPeriod(next); err != nil {
			t.Fatalf("sharded AppendPeriod: %v", err)
		}
		last := sharded.Timeline.NumPeriods() - 1
		for i, u := range users {
			for _, v := range users[i+1:] {
				if baseline.StaticOf(u, v) != sharded.StaticOf(u, v) {
					t.Errorf("n=%d: StaticOf(%d,%d) diverges", n, u, v)
				}
				for k := 0; k <= last; k++ {
					if baseline.DriftOf(u, v, k) != sharded.DriftOf(u, v, k) {
						t.Errorf("n=%d: DriftOf(%d,%d,%d) diverges", n, u, v, k)
					}
				}
				if baseline.Discrete(u, v, last) != sharded.Discrete(u, v, last) {
					t.Errorf("n=%d: Discrete(%d,%d) diverges", n, u, v)
				}
				if baseline.Continuous(u, v, last) != sharded.Continuous(u, v, last) {
					t.Errorf("n=%d: Continuous(%d,%d) diverges", n, u, v)
				}
			}
		}
		if baseline.Static.Len() != sharded.Static.Len() {
			t.Errorf("n=%d: static table sizes diverge (%d vs %d)", n, baseline.Static.Len(), sharded.Static.Len())
		}
		// Reset the baseline for the next shard count (AppendPeriod
		// mutated it).
		baseline, err = BuildModel(users, tl, src, src)
		if err != nil {
			t.Fatalf("rebuilding baseline: %v", err)
		}
	}
}

// TestPairTableShardsByLowerUser pins the routing contract: a pair's
// entry lives in the part of its lower member's shard.
func TestPairTableShardsByLowerUser(t *testing.T) {
	m, _ := shard.New(4)
	tab := NewPairTable(m, 8)
	p := MakePair(9, 2) // canonical order: U=2, V=9
	tab.Set(p, 0.5)
	want := m.Of(2)
	for i, part := range tab.parts {
		_, ok := part[p]
		if ok != (i == want) {
			t.Errorf("pair stored in part %d, want only part %d", i, want)
		}
	}
	if tab.Get(p) != 0.5 {
		t.Errorf("Get = %v, want 0.5", tab.Get(p))
	}
	if tab.Get(MakePair(0, 1)) != 0 {
		t.Error("absent pair should read 0")
	}
}
