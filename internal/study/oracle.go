// Package study simulates the paper's Facebook user study (§4.1). The
// original evaluation recruited 72 users who rated MovieLens movies
// and then judged group recommendation lists, both independently
// (0..5 satisfaction) and comparatively (choose one of two lists).
// Since human judges are unavailable, this package implements a
// satisfaction oracle grounded in the synthetic world's latent state:
// each simulated participant's enjoyment of an item in company depends
// on (a) their own latent taste for the item, (b) how much their
// companions enjoy it weighted by the *true* time-varying affinity to
// each companion, (c) a misery penalty when somebody present hates the
// item, and (d) a disagreement penalty when tastes for the item split
// the group. This is precisely the behavioural conjecture the paper
// builds on (§1: "a user appreciates recommendations differently in
// the company of different people and at different times"), so
// recommendation variants that model affinity and its temporal drift
// estimate the oracle better and score higher — the same mechanism the
// paper attributes to its human subjects.
package study

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/social"
)

// Oracle scores the satisfaction of simulated participants.
type Oracle struct {
	// Synth provides latent (noiseless) user-item scores on 1..5.
	Synth *dataset.Synth
	// Net provides ground-truth temporal affinity between users.
	Net *social.SynthNetwork

	// CompanionWeight scales how strongly a member's enjoyment is
	// pulled toward companions' enjoyment; the effective weight for a
	// user is CompanionWeight times their mean true affinity with the
	// group, so high-affinity company matters more.
	CompanionWeight float64
	// MiseryPenalty scales the multiplicative hit when members with a
	// latent score below MiseryThreshold are present.
	MiseryPenalty   float64
	MiseryThreshold float64
	// DisagreementPenalty scales the subtractive hit for the latent
	// taste spread across the group.
	DisagreementPenalty float64
	// ComfortPenalty scales the comfort gate: niche (taste-polarizing)
	// items lose value in low-affinity company — the paper's own
	// motivating example (a romantic movie is fine with girlfriends,
	// awkward with strangers; a burger joint with the kids, not with
	// the parents). The multiplier for an item of nicheness n with
	// mean companion affinity a is 1 − ComfortPenalty·n·(1−a).
	ComfortPenalty float64
	// NoiseStd is the judgment noise on the 0..1 scale.
	NoiseStd float64

	nicheness map[dataset.ItemID]float64
}

// DefaultOracle returns the calibrated oracle used by all quality
// experiments.
func DefaultOracle(sy *dataset.Synth, net *social.SynthNetwork) *Oracle {
	return &Oracle{
		Synth:               sy,
		Net:                 net,
		CompanionWeight:     1.0,
		MiseryPenalty:       0.5,
		MiseryThreshold:     2.0,
		DisagreementPenalty: 0.3,
		ComfortPenalty:      0.7,
		NoiseStd:            0.015,
		nicheness:           make(map[dataset.ItemID]float64),
	}
}

// Nicheness returns the item's taste polarization in [0,1]: the
// standard deviation of the latent score across the user population,
// scaled so the most polarizing items approach 1. Broad crowd-pleasers
// score near 0.
func (o *Oracle) Nicheness(it dataset.ItemID) float64 {
	if n, ok := o.nicheness[it]; ok {
		return n
	}
	users := len(o.Synth.UserTaste)
	var sum, sumSq float64
	for u := 0; u < users; u++ {
		l := o.Synth.LatentScore(dataset.UserID(u), it)
		sum += l
		sumSq += l * l
	}
	mean := sum / float64(users)
	variance := sumSq/float64(users) - mean*mean
	if variance < 0 {
		variance = 0
	}
	// A uniformly split audience (half at 1, half at 5) has sd 2;
	// scale so that extreme polarization maps to 1.
	n := clamp01(mathSqrt(variance) / 2)
	o.nicheness[it] = n
	return n
}

// Validate reports wiring errors.
func (o *Oracle) Validate() error {
	if o.Synth == nil {
		return fmt.Errorf("study: Oracle.Synth is nil (quality experiments need a synthetic rating world)")
	}
	if o.Net == nil {
		return fmt.Errorf("study: Oracle.Net is nil")
	}
	return nil
}

// ItemSatisfaction returns user u's satisfaction in [0,1] with
// consuming item it together with group members at time t, without
// judgment noise (noise is added per verdict so that repeated
// judgments vary like human ones).
//
// The functional form mirrors the paper's relative-preference
// conjecture with ground-truth inputs: u's enjoyment is their own
// latent taste plus an affinity-weighted *sum* of companions' latent
// enjoyment (so high-affinity companions matter and strangers do not),
// adjusted by a misery penalty (someone present hates it) and a
// disagreement penalty (the item splits the group). The recommendation
// variant that models affinity and its drift estimates this quantity
// best, which is exactly the mechanism the paper posits for its human
// judges.
func (o *Oracle) ItemSatisfaction(u dataset.UserID, members []dataset.UserID, it dataset.ItemID, t int64) float64 {
	own := o.Synth.LatentScore(u, it) / 5

	// Relative term: affinity-weighted sum of companions' enjoyment,
	// scaled like the engine's rpref normalization so group sizes are
	// comparable.
	var rel, affSum float64
	var minL, maxL = 5.0, 1.0
	for _, v := range members {
		lv := o.Synth.LatentScore(v, it)
		if lv < minL {
			minL = lv
		}
		if lv > maxL {
			maxL = lv
		}
		if v == u {
			continue
		}
		a := o.Net.TrueAffinity(u, v, t)
		affSum += a
		rel += a * (lv / 5)
	}
	// Combine exactly like the engine's pref = apref + rpref with its
	// 1 + (g−1)·affMax normalizer, so the ground truth has the same
	// functional form the paper's model conjectures; CompanionWeight
	// scales how much company matters overall.
	g := len(members)
	s := own
	if g > 1 {
		w := o.CompanionWeight
		s = (own + w*rel) / (1 + w*float64(g-1))

		// Comfort gate: polarizing items are enjoyed with close
		// company and awkward with strangers, regardless of one's own
		// taste — the paper's §1 motivating scenario.
		meanAff := affSum / float64(g-1)
		s *= 1 - o.ComfortPenalty*o.Nicheness(it)*(1-clamp01(meanAff))
	}

	// Misery: a member who truly dislikes the item drags everyone down
	// (strongest in large groups, which is why least-misery wins
	// there).
	if minL < o.MiseryThreshold {
		frac := (o.MiseryThreshold - minL) / o.MiseryThreshold
		s *= 1 - o.MiseryPenalty*frac
	}

	// Disagreement: a split group enjoys the outing less regardless of
	// the mean (why PD helps dissimilar groups).
	spread := (maxL - minL) / 4
	s -= o.DisagreementPenalty * spread

	return clamp01(s)
}

// ListSatisfaction returns u's satisfaction in [0,1] with the whole
// recommended list (mean over items), noise-free.
func (o *Oracle) ListSatisfaction(u dataset.UserID, members []dataset.UserID, items []dataset.ItemID, t int64) float64 {
	if len(items) == 0 {
		return 0
	}
	var s float64
	for _, it := range items {
		s += o.ItemSatisfaction(u, members, it, t)
	}
	return s / float64(len(items))
}

// Verdict returns u's noisy 0..5 rating of the list, as collected in
// the paper's independent evaluation phase. rng supplies the judgment
// noise so verdicts are reproducible per study seed.
func (o *Oracle) Verdict(rng *rand.Rand, u dataset.UserID, members []dataset.UserID, items []dataset.ItemID, t int64) float64 {
	s := o.ListSatisfaction(u, members, items, t)
	s += o.NoiseStd * rng.NormFloat64()
	return 5 * clamp01(s)
}

// Prefer returns true when u prefers list a over list b (the paper's
// comparative evaluation; the closed-world forced choice breaks exact
// ties randomly).
func (o *Oracle) Prefer(rng *rand.Rand, u dataset.UserID, members []dataset.UserID, a, b []dataset.ItemID, t int64) bool {
	sa := o.ListSatisfaction(u, members, a, t) + o.NoiseStd*rng.NormFloat64()
	sb := o.ListSatisfaction(u, members, b, t) + o.NoiseStd*rng.NormFloat64()
	if sa == sb {
		return rng.Intn(2) == 0
	}
	return sa > sb
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func mathSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are precise enough here, but use the stdlib.
	return math.Sqrt(x)
}
