package dataset

import (
	"strings"
	"testing"
)

// FuzzLoadMovieLensRatings asserts the ratings parser never panics and
// that accepted inputs are fully consistent (every parsed rating is in
// range and queryable).
func FuzzLoadMovieLensRatings(f *testing.F) {
	f.Add("1::2::3::4\n")
	f.Add("1::2::3::4\n5::6::1::0\n")
	f.Add("")
	f.Add("::::\n")
	f.Add("1::2::5.5::4\n")
	f.Add("-1::-2::3::-4\n")
	f.Add("1::2::3::4::5\n")
	f.Add(strings.Repeat("9::9::5::9\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		store, err := LoadMovieLensRatings(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, u := range store.Users() {
			for _, r := range store.ByUser(u) {
				if r.Value < 1 || r.Value > 5 {
					t.Fatalf("accepted out-of-range rating %v", r.Value)
				}
				if v, ok := store.Value(u, r.Item); !ok || v != r.Value {
					t.Fatalf("accepted rating not queryable: %+v", r)
				}
			}
		}
	})
}

// FuzzReadMovies asserts the movies.dat parser never panics and keeps
// id→movie lookups consistent for accepted input.
func FuzzReadMovies(f *testing.F) {
	f.Add("1::Title (1999)::Drama|Comedy\n")
	f.Add("1::A::B\n2::C::D\n")
	f.Add("x::y::z\n")
	f.Add("1::Movie: Colons::Drama\n")
	f.Add("::::::\n")
	f.Fuzz(func(t *testing.T, input string) {
		md := NewMetadata()
		if err := md.ReadMovies(strings.NewReader(input)); err != nil {
			return
		}
		if md.NumMovies() < 0 {
			t.Fatal("negative movie count")
		}
	})
}

// FuzzReadUsers asserts the users.dat parser never panics.
func FuzzReadUsers(f *testing.F) {
	f.Add("1::F::25::3::12345\n")
	f.Add("1::M::1::0::00000\n2::F::56::20::99999\n")
	f.Add("1::Q::25::3::12345\n")
	f.Add("::::\n")
	f.Fuzz(func(t *testing.T, input string) {
		md := NewMetadata()
		if err := md.ReadUsers(strings.NewReader(input)); err != nil {
			return
		}
		for id := 0; id < md.NumUsers()+5; id++ {
			if u, ok := md.User(UserID(id)); ok {
				if u.Gender != GenderFemale && u.Gender != GenderMale {
					t.Fatalf("accepted bad gender %q", u.Gender)
				}
			}
		}
	})
}
