package study

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/groups"
)

func testStudy(t *testing.T) *Study {
	t.Helper()
	w, err := repro.NewWorld(repro.QuickConfig())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	s, err := New(w, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewRejectsLoadedWorld(t *testing.T) {
	// A world without synthetic latent state cannot host the study.
	// Simulate by checking the error path via a nil-synth world: the
	// cheapest construction is loading a tiny ratings file.
	cfg := repro.QuickConfig()
	w, err := repro.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.SynthRatings() == nil {
		t.Fatal("expected synthetic world")
	}
	// The loaded-world path is exercised in the root package tests;
	// here we only assert the happy path wires an oracle.
	s, err := New(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Oracle == nil || s.K != 10 {
		t.Errorf("study not initialized: %+v", s)
	}
}

func TestCandidateItemsPool(t *testing.T) {
	s := testStudy(t)
	items := s.CandidateItems()
	if len(items) < 50 || len(items) > 75 {
		t.Errorf("pool size = %d, want 50..75", len(items))
	}
	seen := map[dataset.ItemID]bool{}
	for _, it := range items {
		if seen[it] {
			t.Fatalf("duplicate pool item %d", it)
		}
		seen[it] = true
	}
	// Pool is cached.
	again := s.CandidateItems()
	if &again[0] != &items[0] {
		t.Errorf("pool not cached")
	}
}

func TestVariantOptions(t *testing.T) {
	for _, v := range Variants() {
		opt := v.Options(7)
		if opt.K != 7 {
			t.Errorf("%v: K = %d", v, opt.K)
		}
	}
	if Default.Options(5).TimeModel != repro.Discrete {
		t.Errorf("default should be discrete")
	}
	if AffinityAgnostic.Options(5).TimeModel != repro.AffinityAgnostic {
		t.Errorf("affinity-agnostic wrong")
	}
	if ContinuousTime.Options(5).TimeModel != repro.Continuous {
		t.Errorf("continuous wrong")
	}
}

func TestRecommendCachesAndSizes(t *testing.T) {
	s := testStudy(t)
	gs := s.StudyGroups(1)
	l1, err := s.Recommend(gs[0], Default)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if len(l1) != s.K {
		t.Fatalf("list size = %d, want %d", len(l1), s.K)
	}
	l2, err := s.Recommend(gs[0], Default)
	if err != nil {
		t.Fatal(err)
	}
	if &l1[0] != &l2[0] {
		t.Errorf("recommendation not cached")
	}
}

func TestIndependentScoresInRange(t *testing.T) {
	s := testStudy(t)
	gs := s.StudyGroups(1)
	scores, err := s.Independent(gs, Default)
	if err != nil {
		t.Fatalf("Independent: %v", err)
	}
	for c, v := range scores {
		if v < 0 || v > 100 {
			t.Errorf("%v score %v outside [0,100]", c, v)
		}
	}
	for _, c := range groups.Characteristics() {
		if _, ok := scores[c]; !ok {
			t.Errorf("characteristic %v missing", c)
		}
	}
}

func TestComparativeComplementary(t *testing.T) {
	s := testStudy(t)
	gs := s.StudyGroups(1)
	ab, err := s.Comparative(gs, Default, AffinityAgnostic)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range ab {
		if v < 0 || v > 100 {
			t.Errorf("%v preference %v outside [0,100]", c, v)
		}
	}
	// Comparing a variant against itself must be near 50% (pure noise
	// and tie-breaking).
	self, err := s.Comparative(gs, Default, Default)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range self {
		if v < 10 || v > 90 {
			t.Errorf("self-comparison for %v = %v%%, want noise around 50", c, v)
		}
	}
}

func TestConsensusSharesSumTo100(t *testing.T) {
	s := testStudy(t)
	gs := s.StudyGroups(1)
	shares, err := s.ConsensusShares(gs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range groups.Characteristics() {
		var sum float64
		for _, v := range []Variant{Default, MOVariant, PDVariant} {
			sum += shares[v][c]
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%v shares sum to %v", c, sum)
		}
	}
}

func TestOracleSatisfactionProperties(t *testing.T) {
	s := testStudy(t)
	members := s.World.Participants()[:4]
	items := s.CandidateItems()
	now := s.World.Timeline().End - 1
	for _, it := range items[:20] {
		for _, u := range members {
			v := s.Oracle.ItemSatisfaction(u, members, it, now)
			if v < 0 || v > 1 {
				t.Fatalf("satisfaction %v outside [0,1]", v)
			}
		}
	}
	// List satisfaction is the mean of item satisfactions.
	u := members[0]
	list := items[:5]
	var sum float64
	for _, it := range list {
		sum += s.Oracle.ItemSatisfaction(u, members, it, now)
	}
	if got := s.Oracle.ListSatisfaction(u, members, list, now); got != sum/5 {
		t.Errorf("ListSatisfaction = %v, want %v", got, sum/5)
	}
	if s.Oracle.ListSatisfaction(u, members, nil, now) != 0 {
		t.Errorf("empty list satisfaction should be 0")
	}
}

func TestNichenessProperties(t *testing.T) {
	s := testStudy(t)
	items := s.CandidateItems()
	for _, it := range items {
		n := s.Oracle.Nicheness(it)
		if n < 0 || n > 1 {
			t.Fatalf("nicheness %v outside [0,1]", n)
		}
		if again := s.Oracle.Nicheness(it); again != n {
			t.Fatalf("nicheness not cached deterministically")
		}
	}
}

func TestAnchoredVerdictEndpoints(t *testing.T) {
	s := testStudy(t)
	s.Oracle.NoiseStd = 0 // deterministic endpoints
	g := s.StudyGroups(1)[0]
	a := s.anchorsFor(g)
	for _, u := range g.Members {
		// The judgment scale must be well formed: the oracle-optimal
		// list anchors strictly above the random baseline.
		if a.opt[u] <= a.rnd[u] {
			t.Fatalf("user %d: optimal anchor %.4f not above random anchor %.4f", u, a.opt[u], a.rnd[u])
		}
	}
	// A verdict for any list must land in [0, 5].
	for _, v := range Variants() {
		list, err := s.Recommend(g, v)
		if err != nil {
			t.Fatal(err)
		}
		verdict := s.anchoredVerdict(g, g.Members[0], list)
		if verdict < 0 || verdict > 5 {
			t.Errorf("%v verdict %v outside [0,5]", v, verdict)
		}
	}
}

func TestConsensusEnginePDSemantics(t *testing.T) {
	// The engine's pairwise-disagreement path scores
	// F = w1·gpref + w2·mean(1−|Δapref|); verify through the public
	// API that a PD recommendation differs from plain AP when
	// disagreement separates items.
	s := testStudy(t)
	g := s.StudyGroups(1)[1] // a low-affinity (taste-diverse) group
	ap, err := s.Recommend(g, Default)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := s.Recommend(g, PDVariant)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap) != len(pd) {
		t.Fatalf("list sizes differ")
	}
	// Not asserting inequality (they may legitimately coincide), but
	// both must be valid K-sized lists from the pool.
	pool := map[dataset.ItemID]bool{}
	for _, it := range s.CandidateItems() {
		pool[it] = true
	}
	for _, l := range [][]dataset.ItemID{ap, pd} {
		for _, it := range l {
			if !pool[it] {
				t.Fatalf("item %d outside the study pool", it)
			}
		}
	}
}

func TestStudyDetails(t *testing.T) {
	s := testStudy(t)
	gs := s.StudyGroups(1)[:3]
	details, err := s.Details(gs)
	if err != nil {
		t.Fatalf("Details: %v", err)
	}
	if len(details) != 3 {
		t.Fatalf("details = %d", len(details))
	}
	for _, d := range details {
		if len(d.Verdicts) != len(Variants()) {
			t.Errorf("group %v has %d verdicts", d.Group.Members, len(d.Verdicts))
		}
		for v, stars := range d.Verdicts {
			if stars < 0 || stars > 5 {
				t.Errorf("%v verdict %v outside [0,5]", v, stars)
			}
		}
		if d.MinAffinity < 0 || d.MinAffinity > 1 {
			t.Errorf("min affinity %v out of range", d.MinAffinity)
		}
	}
	var buf bytes.Buffer
	if err := WriteDetails(&buf, details); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Default") {
		t.Errorf("detail table missing variant header")
	}
}
