package engine

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/liststore"
	"repro/internal/shard"
)

// TestAprefViewsShardedIdentical: an assembler over a 4-way-sharded
// list store (with the matching shard map attached, so member fills
// interleave across sub-stores) produces byte-identical view
// assemblies to the unsharded one — rows, sorted views, and patches —
// for mixed-shard groups, in both sequential and parallel fills.
func TestAprefViewsShardedIdentical(t *testing.T) {
	store, pred := testSubstrate(t)
	pool := store.PopularityRanked()
	m, _ := shard.New(4)

	for _, workers := range []int{1, 8} {
		plain := New(pred, workers)
		plain.AttachListStore(liststore.New(pred, pool, 64, 5))
		sharded := New(pred, workers)
		sharded.AttachListStore(liststore.NewSharded(pred, pool, 64, 5, m))
		sharded.AttachShards(m)

		group := []dataset.UserID{0, 3, 7, 12, 25, 4}
		// Guarantee the group genuinely mixes shards.
		seen := make(map[int]bool)
		for _, u := range group {
			seen[m.Of(int64(u))] = true
		}
		if len(seen) < 2 {
			t.Fatalf("test group spans %d shards, want >= 2", len(seen))
		}
		items := append(append([]dataset.ItemID{}, pool[:10]...), 999) // 999: patch item
		want, ok1, err1 := plain.AprefViews(group, items, 5)
		got, ok2, err2 := sharded.AprefViews(group, items, 5)
		if err1 != nil || err2 != nil {
			t.Fatalf("workers=%d: AprefViews errored (plain %v, sharded %v)", workers, err1, err2)
		}
		if !ok1 || !ok2 {
			t.Fatalf("workers=%d: view assembly declined (plain %v, sharded %v)", workers, ok1, ok2)
		}
		if !reflect.DeepEqual(want.Rows, got.Rows) {
			t.Errorf("workers=%d: rows diverge", workers)
		}
		if !reflect.DeepEqual(want.Views.LocalOf, got.Views.LocalOf) {
			t.Errorf("workers=%d: mappings diverge", workers)
		}
		for ui := range want.Views.Members {
			w, g := want.Views.Members[ui], got.Views.Members[ui]
			if !reflect.DeepEqual(w.View.Entries, g.View.Entries) {
				t.Errorf("workers=%d member %d: sorted views diverge", workers, ui)
			}
			if !reflect.DeepEqual(w.Patch, g.Patch) {
				t.Errorf("workers=%d member %d: patches diverge", workers, ui)
			}
		}
		plain.Release(want.Rows)
		sharded.Release(got.Rows)
	}
}

// TestShardInterleavedOrder pins the fill-order contract: every member
// index appears exactly once, consecutive positions rotate across the
// group's shards, and a 1-way map keeps the identity order (the
// bit-identical degenerate case).
func TestShardInterleavedOrder(t *testing.T) {
	m, _ := shard.New(4)
	a := New(nil, 1)
	a.AttachShards(m)
	group := []dataset.UserID{0, 1, 2, 3, 4, 5, 6, 7}
	order := a.shardInterleavedOrder(group)
	if len(order) != len(group) {
		t.Fatalf("order has %d entries, want %d", len(order), len(group))
	}
	seen := make([]bool, len(group))
	for _, ui := range order {
		if ui < 0 || ui >= len(group) || seen[ui] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[ui] = true
	}
	// The first positions cover as many distinct shards as the group
	// spans (round-robin dealing).
	shards := make(map[int]bool)
	for _, u := range group {
		shards[m.Of(int64(u))] = true
	}
	prefix := make(map[int]bool)
	for _, ui := range order[:len(shards)] {
		prefix[m.Of(int64(group[ui]))] = true
	}
	if len(prefix) != len(shards) {
		t.Errorf("first %d fills cover %d shards, want %d (order %v)", len(shards), len(prefix), len(shards), order)
	}

	single := New(nil, 1)
	if got := single.shardInterleavedOrder(group); !reflect.DeepEqual(got, identityOrder(len(group))) {
		t.Errorf("1-way order = %v, want identity", got)
	}
}
