package cf

import (
	"sort"

	"repro/internal/dataset"
)

// This file is the live-world side of the cf package: the hooks that
// keep every derived structure coherent after a rating is applied to
// the delta overlay, and the export/restore pair the snapshot layer
// uses to warm-start the neighborhood caches.
//
// Coherence model: one new rating by user u changes u's vector, and
// therefore sim(v, u) for EVERY other user v — so every cached
// neighborhood (not just u's) is stale, as are the fallback means.
// NoteIngest recomputes the means with the exact construction loops
// (same accumulation order, so the swap is bit-identical to a cold
// rebuild) and drops every neighborhood; only u's cached norm is
// dropped, because a norm depends solely on its own user's vector.
//
// The epoch counters close the fill/invalidate race: a lazy fill that
// started before NoteIngest — computed from pre-ingest state — fails
// the epoch check at install time and is never cached, so a cleared
// cache cannot be re-populated with stale entries by an in-flight
// scan. Callers serialize NoteIngest invocations (the World's ingest
// lock); reads need no coordination.

// NoteIngest makes the predictor's derived state coherent with a
// rating just applied for user u: the fallback means are recomputed
// from the (delta-overlaid) store and swapped, every cached
// neighborhood is dropped, and u's cached norm is dropped.
func (p *Predictor) NoteIngest(u dataset.UserID) {
	// Order matters: swap means first, then bump epochs, then clear.
	// Any fill that read the old means started before the bump and is
	// fenced; fills starting after the bump see the new means.
	p.means.Store(computePredictorMeans(p.store))
	for _, pp := range p.parts {
		pp.epoch.Add(1)
	}
	for _, pp := range p.parts {
		for i := range pp.shards {
			sh := &pp.shards[i]
			sh.mu.Lock()
			if len(sh.neighbors) > 0 {
				sh.neighbors = make(map[dataset.UserID][]Neighbor)
			}
			sh.mu.Unlock()
		}
	}
	sh := &p.part(u).shards[shardIndex(uint64(u))]
	sh.mu.Lock()
	delete(sh.norms, u)
	sh.mu.Unlock()
}

// NoteIngest makes the item predictor coherent with an ingested
// rating: the mean tables (user, item, global) are recomputed and
// swapped, and every cached item neighborhood is dropped — the
// ingesting user's mean shifts, which re-centers the adjusted cosine
// of every item pair they co-rated.
func (p *ItemPredictor) NoteIngest() {
	p.means.Store(computeItemPredictorMeans(p.store))
	for _, pp := range p.parts {
		pp.epoch.Add(1)
	}
	for _, pp := range p.parts {
		for i := range pp.shards {
			sh := &pp.shards[i]
			sh.mu.Lock()
			if len(sh.neighbors) > 0 {
				sh.neighbors = make(map[dataset.ItemID][]itemNeighbor)
			}
			sh.mu.Unlock()
		}
	}
}

// UserNeighbors is one user's cached neighborhood in export form — the
// unit the snapshot layer persists so a warm restart skips the
// O(users) neighborhood scans.
type UserNeighbors struct {
	User      dataset.UserID
	Neighbors []Neighbor
}

// ExportNeighborhoods snapshots every cached neighborhood, sorted by
// user for deterministic output. The neighbor slices are copies; the
// caller owns them.
func (p *Predictor) ExportNeighborhoods() []UserNeighbors {
	var out []UserNeighbors
	for _, pp := range p.parts {
		for i := range pp.shards {
			sh := &pp.shards[i]
			sh.mu.RLock()
			for u, ns := range sh.neighbors {
				out = append(out, UserNeighbors{User: u, Neighbors: append([]Neighbor(nil), ns...)})
			}
			sh.mu.RUnlock()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// RestoreNeighborhoods seeds the cache with previously exported
// neighborhoods, returning how many were installed. Entries for users
// already cached are skipped (the resident entry is canonical). The
// caller guarantees the snapshot matches the store — the persistence
// layer's config fingerprint gates that.
func (p *Predictor) RestoreNeighborhoods(ns []UserNeighbors) int {
	restored := 0
	for _, un := range ns {
		pp := p.part(un.User)
		sh := &pp.shards[shardIndex(uint64(un.User))]
		sh.mu.Lock()
		if _, ok := sh.neighbors[un.User]; !ok {
			sh.neighbors[un.User] = append([]Neighbor(nil), un.Neighbors...)
			restored++
		}
		sh.mu.Unlock()
	}
	return restored
}

// CachedNeighborhoods reports the number of cached neighborhoods
// (across all shard parts) — the warm-start observability hook.
func (p *Predictor) CachedNeighborhoods() int {
	n := 0
	for _, s := range p.StatsByShard() {
		n += s.Size
	}
	return n
}

// InvalidateAll drops every cached prediction row — the coherent
// counterpart of InvalidateUser for events that change every user's
// predictions at once (a rating ingest shifts every neighborhood and
// the fallback means). Returns the number of rows dropped.
func (c *CachedSource) InvalidateAll() int {
	n := 0
	for _, p := range c.parts {
		p.epoch.Add(1)
		for i := range p.shards {
			n += p.shards[i].clear()
		}
	}
	return n
}
