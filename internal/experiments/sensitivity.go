package experiments

import (
	"fmt"
	"io"

	"repro/internal/groups"
	"repro/internal/study"
)

// SensitivityRow records, for one world seed, the headline quality
// outcomes: the overall preference for time-aware over time-agnostic
// recommendations (Figure 3B's aggregate) and for affinity-aware over
// affinity-agnostic (Figure 3A's aggregate).
type SensitivityRow struct {
	Seed             int64
	TimeAwarePct     float64
	AffinityAwarePct float64
}

// ExperimentSeedSensitivity re-runs the two comparative headline
// studies over several independently generated worlds. The paper's
// single study cannot show run-to-run variance; this sweep makes the
// simulated effect sizes' stability explicit (EXPERIMENTS.md reports
// the time axis as the robust one).
func ExperimentSeedSensitivity(seeds []int64) ([]SensitivityRow, error) {
	out := make([]SensitivityRow, 0, len(seeds))
	for _, seed := range seeds {
		env, err := NewEnv(QualityConfig(), seed)
		if err != nil {
			return nil, fmt.Errorf("sensitivity seed %d: %w", seed, err)
		}
		timeAware, err := env.Study.Comparative(env.StudyGroups, study.Default, study.TimeAgnostic)
		if err != nil {
			return nil, fmt.Errorf("sensitivity seed %d (time): %w", seed, err)
		}
		affAware, err := env.Study.Comparative(env.StudyGroups, study.Default, study.AffinityAgnostic)
		if err != nil {
			return nil, fmt.Errorf("sensitivity seed %d (affinity): %w", seed, err)
		}
		out = append(out, SensitivityRow{
			Seed:             seed,
			TimeAwarePct:     overallPct(timeAware),
			AffinityAwarePct: overallPct(affAware),
		})
	}
	return out, nil
}

// overallPct averages a characteristic map into one headline number.
func overallPct(cs study.CharacteristicScores) float64 {
	var sum float64
	n := 0
	for _, c := range groups.Characteristics() {
		if v, ok := cs[c]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteSensitivity renders the seed sweep.
func WriteSensitivity(w io.Writer, rows []SensitivityRow) error {
	if _, err := fmt.Fprintf(w, "\n## Seed Sensitivity — headline comparative preferences (%%)\n\n| Seed | Time-aware vs agnostic | Affinity-aware vs agnostic |\n|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %d | %.1f | %.1f |\n", r.Seed, r.TimeAwarePct, r.AffinityAwarePct); err != nil {
			return err
		}
	}
	return nil
}
