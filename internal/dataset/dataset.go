// Package dataset provides the collaborative-rating substrate of the
// reproduction: an in-memory rating store, a loader for the MovieLens
// "::"-separated dump format, and a synthetic generator that reproduces
// the marginal statistics of the MovieLens 1M dataset used by the paper
// (Table 5: 6,040 users, 3,952 movies, 1,000,209 ratings on a 1..5
// scale with a long-tailed item popularity distribution).
package dataset

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/shard"
)

// UserID identifies a user. IDs are dense small integers starting at 0
// so that stores can be backed by slices.
type UserID int

// ItemID identifies an item (a movie in the paper's evaluation).
type ItemID int

// Rating is one (user, item, value, timestamp) observation. Value is on
// the paper's 1..5 scale; Time is a Unix timestamp in seconds.
type Rating struct {
	User UserID
	Item ItemID
	// Value is the star rating, 1..5 (5 best).
	Value float64
	// Time is the rating timestamp (Unix seconds). The group
	// recommendation pipeline does not need it, but the MovieLens
	// format carries it and the loader preserves it.
	Time int64
}

// Stats summarises a store; it is what Table 5 of the paper reports.
type Stats struct {
	Users   int
	Items   int
	Ratings int
	// MeanRating is the average rating value.
	MeanRating float64
	// MeanRatingsPerUser is Ratings / Users.
	MeanRatingsPerUser float64
}

// Ingest errors, matchable with errors.Is so callers (the HTTP ratings
// endpoint) can map each rejection to a machine-readable code.
var (
	// ErrNotFrozen is returned by Apply before Freeze: live ingest
	// overlays a frozen base, it does not replace the loader path.
	ErrNotFrozen = errors.New("store not frozen")
	// ErrUnknownUser rejects ratings by users outside the frozen user
	// set (the overlay cannot grow the user domain — every derived
	// structure, from shard arenas to CF neighborhoods, is sized to it).
	ErrUnknownUser = errors.New("unknown user")
	// ErrUnknownItem rejects ratings of items outside the catalog.
	ErrUnknownItem = errors.New("unknown item")
	// ErrBadValue rejects values outside the paper's 1..5 scale.
	ErrBadValue = errors.New("rating value outside [1,5]")
)

// Store is an in-memory collaborative rating database with both
// user-major and item-major access paths. After Freeze the base matrix
// is immutable, and all query methods are safe for concurrent use; live
// writes go through Apply, which appends to a per-shard delta log that
// every read path overlays until ReFreeze folds the deltas back into
// the frozen arenas.
//
// Per-user state — the rating rows and the rated-item bitsets — lives
// in per-shard arenas after Freeze, partitioned by a shard.Map
// (Single unless Reshard installs a wider one): every user-keyed
// lookup routes through the map to its shard's arena, so a sharded
// world reads only the arenas its group members hash to. Item-major
// state (the catalog, popularity ranking, per-item rating lists) is
// shared: it is a property of the catalog, not of any user range.
//
// Concurrency model: the frozen state lives behind one atomic pointer
// and is never mutated in place — ReFreeze builds a successor and
// swaps. Overlay reads take their user's delta-shard read lock (or the
// item-side read lock) and load the state pointer inside it; ReFreeze
// swaps while holding every delta write lock, so a reader always sees
// a (state, delta) pair that composes to the full matrix. When no
// deltas are pending — the steady state — reads are lock-free.
type Store struct {
	// byUser/byItem are the ingest-side accumulation, populated by Add
	// and consumed by Freeze; nil afterwards.
	byUser   map[UserID][]Rating
	byItem   map[ItemID][]Rating
	nRatings int
	sumVal   float64
	frozen   bool
	// state is the frozen base matrix; ReFreeze swaps in successors.
	state atomic.Pointer[storeState]
	// deltas is the live-write overlay, created at Freeze.
	deltas *DeltaLog
}

// storeState is one immutable snapshot of the frozen matrix. All fields
// are read-only after construction; ReFreeze replaces the whole value.
type storeState struct {
	byItem   map[ItemID][]Rating
	users    []UserID
	items    []ItemID
	nRatings int
	sumVal   float64
	// popRanked is the popularity ranking, precomputed so hot-path
	// candidate selection never re-sorts the catalog.
	popRanked []ItemID
	// sm partitions per-user state; parts are its arenas (one per
	// shard).
	sm    shard.Map
	parts []storePart
	// maskWords is the bitset length in words, 0 when bitsets are
	// unavailable (item IDs too sparse or negative — see
	// bitsetEligible).
	maskWords int
}

// storePart is one shard's arena of per-user state: the rating rows
// and rated-item bitsets of exactly the users hashing to this shard.
// Bitsets share one backing array per arena, so a shard's per-user
// masks are contiguous in memory.
type storePart struct {
	byUser map[UserID][]Rating
	// rated[u] marks u's rated items as a bitset indexed by ItemID;
	// nil map when bitsets are unavailable.
	rated map[UserID]Bitset
}

// Bitset is a fixed-size item-indexed bit vector. The zero value (nil)
// reports no items.
type Bitset []uint64

// Has reports whether item it is set. Out-of-range (including
// negative) IDs report false.
func (b Bitset) Has(it ItemID) bool {
	if it < 0 {
		return false
	}
	w := int(it >> 6)
	return w < len(b) && b[w]>>(uint(it)&63)&1 == 1
}

// set marks item it; the caller guarantees it is in range.
func (b Bitset) set(it ItemID) { b[it>>6] |= 1 << (uint(it) & 63) }

// or merges o into b (same length).
func (b Bitset) or(o Bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// bitsetMemoryBound caps the total memory spent on per-user rated
// bitsets (64MB). Dense MovieLens-scale stores (6040 users × ~4000
// items ≈ 3MB) are far under it; adversarial loader input with huge or
// negative item IDs disables bitsets instead of exploding.
const bitsetMemoryBound = 64 << 20

// bitsetEligible decides whether per-user bitsets are built for the
// given user and item domains.
func bitsetEligible(users []UserID, items []ItemID) (words int, ok bool) {
	if len(items) == 0 {
		return 0, false
	}
	minItem, maxItem := items[0], items[len(items)-1]
	if minItem < 0 {
		return 0, false
	}
	words = int(maxItem>>6) + 1
	if int64(words)*8*int64(len(users)) > bitsetMemoryBound {
		return 0, false
	}
	return words, true
}

// NewStore returns an empty store partitioned 1-way (use Reshard
// after Freeze to widen).
func NewStore() *Store {
	return &Store{
		byUser: make(map[UserID][]Rating),
		byItem: make(map[ItemID][]Rating),
	}
}

// Add appends one rating. It panics if the store is frozen (adding to a
// frozen store is a programming error in this codebase — live writes go
// through Apply) and returns an error for out-of-domain values so that
// loaders can surface malformed input lines.
func (s *Store) Add(r Rating) error {
	if s.frozen {
		panic("dataset: Add on frozen Store")
	}
	if r.Value < 1 || r.Value > 5 {
		return fmt.Errorf("dataset: %w: %.2f for user %d item %d", ErrBadValue, r.Value, r.User, r.Item)
	}
	s.byUser[r.User] = append(s.byUser[r.User], r)
	s.byItem[r.Item] = append(s.byItem[r.Item], r)
	s.nRatings++
	s.sumVal += r.Value
	return nil
}

// FromRatings builds a frozen store from a rating slice, applied in
// order — the snapshot-restore constructor. Feeding back the slice
// DumpRatings produced reproduces the dumped store's reads
// bit-identically.
func FromRatings(recs []Rating) (*Store, error) {
	s := NewStore()
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			return nil, err
		}
	}
	s.Freeze()
	return s, nil
}

// DumpRatings returns every rating — frozen rows and any delta
// overlay — in the canonical frozen order: users ascending, each row
// in its stored (item-sorted, ingest-stable) order. The order is a
// fixed point of dump→rebuild→dump, which keeps repeated
// snapshot/restart cycles byte-stable.
func (s *Store) DumpRatings() []Rating {
	var out []Rating
	for _, u := range s.Users() {
		out = append(out, s.ByUser(u)...)
	}
	return out
}

// Freeze sorts the internal indexes and makes the base store read-only.
// User lists are sorted by item, item lists by user, which gives
// deterministic iteration and enables merge-style similarity scans.
// The sorts are stable so that duplicate (user, item) observations keep
// their ingest order — the property that makes a delta overlay
// bit-identical to a cold rebuild of the same rating sequence.
func (s *Store) Freeze() {
	if s.frozen {
		return
	}
	st := &storeState{
		byItem:   s.byItem,
		nRatings: s.nRatings,
		sumVal:   s.sumVal,
		sm:       shard.Single,
	}
	for u, rs := range s.byUser {
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].Item < rs[j].Item })
		st.users = append(st.users, u)
	}
	sort.Slice(st.users, func(i, j int) bool { return st.users[i] < st.users[j] })
	for it, rs := range s.byItem {
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].User < rs[j].User })
		st.items = append(st.items, it)
	}
	sort.Slice(st.items, func(i, j int) bool { return st.items[i] < st.items[j] })

	// Popularity ranking, computed once: descending rating count with
	// ascending-ID ties (the paper's "popular set" order).
	st.popRanked = rankByPopularity(st.items, func(it ItemID) int { return len(st.byItem[it]) })

	// Partition per-user state into the shard arenas; the ingest maps
	// are cleared so post-freeze reads have one source of truth.
	st.partition(s.byUser)
	s.byUser = nil
	s.byItem = nil
	s.state.Store(st)
	s.deltas = newDeltaLog(st.sm)
	s.frozen = true
}

// rankByPopularity sorts a copy of items by descending count with
// ascending-ID ties. Freeze, the delta overlay, and ReFreeze all rank
// through this one function so the three orderings can never diverge.
func rankByPopularity(items []ItemID, count func(ItemID) int) []ItemID {
	ranked := make([]ItemID, len(items))
	copy(ranked, items)
	sort.Slice(ranked, func(i, j int) bool {
		ci, cj := count(ranked[i]), count(ranked[j])
		if ci != cj {
			return ci > cj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// partition builds the per-shard arenas from a user-keyed rating map:
// each shard gets its own rating-row map and, when item IDs are dense
// enough, a contiguous bitset arena covering exactly its users.
func (st *storeState) partition(byUser map[UserID][]Rating) {
	n := st.sm.N()
	st.parts = make([]storePart, n)
	perShard := make([][]UserID, n)
	for _, u := range st.users {
		si := st.sm.Of(int64(u))
		perShard[si] = append(perShard[si], u)
	}
	words, bitsets := bitsetEligible(st.users, st.items)
	if bitsets {
		st.maskWords = words
	} else {
		st.maskWords = 0
	}
	for si := range st.parts {
		p := &st.parts[si]
		p.byUser = make(map[UserID][]Rating, len(perShard[si]))
		for _, u := range perShard[si] {
			p.byUser[u] = byUser[u]
		}
		if bitsets {
			p.rated = make(map[UserID]Bitset, len(perShard[si]))
			backing := make([]uint64, words*len(perShard[si]))
			for i, u := range perShard[si] {
				b := Bitset(backing[i*words : (i+1)*words])
				for _, r := range p.byUser[u] {
					b.set(r.Item)
				}
				p.rated[u] = b
			}
		}
	}
}

// Reshard re-partitions the per-user arenas under a new shard map (nil
// reverts to the single-shard layout). The store must be frozen; any
// pending deltas are folded first, so the rebuilt arenas are the single
// source of truth. The rating data itself is untouched — only the arena
// a user's rows and bitset live in changes — so every query answers
// identically before and after. This is how the World applies
// Config.Shards to a store the loaders froze 1-way. Reshard is a
// setup-time operation: it must not race Apply or overlay reads.
func (s *Store) Reshard(m shard.Map) {
	s.mustFrozen("Reshard")
	s.ReFreeze()
	st := s.state.Load()
	merged := make(map[UserID][]Rating, len(st.users))
	for pi := range st.parts {
		for u, rs := range st.parts[pi].byUser {
			merged[u] = rs
		}
	}
	ns := &storeState{
		byItem:    st.byItem,
		users:     st.users,
		items:     st.items,
		nRatings:  st.nRatings,
		sumVal:    st.sumVal,
		popRanked: st.popRanked,
		sm:        shard.Normalize(m),
	}
	ns.partition(merged)
	s.state.Store(ns)
	s.deltas = newDeltaLog(ns.sm)
}

// Sharding returns the shard map partitioning the per-user arenas.
func (s *Store) Sharding() shard.Map {
	s.mustFrozen("Sharding")
	return s.state.Load().sm
}

// part returns the arena holding u's per-user state.
func (st *storeState) part(u UserID) *storePart {
	return &st.parts[st.sm.Of(int64(u))]
}

// GroupRatedMask returns the union of the rated-item bitsets of the
// given users, or nil when bitsets are unavailable (unfrozen store, or
// item IDs too sparse/negative — see bitsetEligible). Users absent
// from the store contribute nothing. Pending delta ratings are
// included. The result is freshly allocated; the caller owns it.
func (s *Store) GroupRatedMask(users []UserID) Bitset {
	if !s.frozen {
		return nil
	}
	if s.deltas.count.Load() == 0 {
		st := s.state.Load()
		if st.maskWords == 0 {
			return nil
		}
		mask := make(Bitset, st.maskWords)
		for _, u := range users {
			if b, ok := st.part(u).rated[u]; ok {
				mask.or(b)
			}
		}
		return mask
	}
	// maskWords is a property of the (fixed) user and item domains, so
	// it is identical across every state snapshot — safe to size the
	// mask before taking any delta lock.
	if s.state.Load().maskWords == 0 {
		return nil
	}
	mask := make(Bitset, s.state.Load().maskWords)
	for _, u := range users {
		d := s.deltas.userShard(u)
		d.mu.RLock()
		st := s.state.Load()
		if b, ok := st.part(u).rated[u]; ok {
			mask.or(b)
		}
		for _, r := range d.byUser[u] {
			mask.set(r.Item)
		}
		d.mu.RUnlock()
	}
	return mask
}

// Frozen reports whether Freeze has been called.
func (s *Store) Frozen() bool { return s.frozen }

// Users returns all user IDs in ascending order. The store must be
// frozen. The returned slice is shared; callers must not modify it.
func (s *Store) Users() []UserID {
	s.mustFrozen("Users")
	return s.state.Load().users
}

// Items returns all item IDs in ascending order (shared slice).
func (s *Store) Items() []ItemID {
	s.mustFrozen("Items")
	return s.state.Load().items
}

// ByUser returns the ratings of u sorted by item (may be nil if u rated
// nothing). The lookup routes through the shard map to u's arena. With
// no pending deltas the returned slice is shared with the store; with
// deltas it is a freshly merged copy — either way callers must not
// modify it.
func (s *Store) ByUser(u UserID) []Rating {
	s.mustFrozen("ByUser")
	if s.deltas.count.Load() == 0 {
		st := s.state.Load()
		return st.part(u).byUser[u]
	}
	d := s.deltas.userShard(u)
	d.mu.RLock()
	defer d.mu.RUnlock()
	st := s.state.Load()
	base := st.part(u).byUser[u]
	rows := d.byUser[u]
	if len(rows) == 0 {
		return base
	}
	return mergeByItem(base, rows)
}

// ByItem returns the ratings of item it sorted by user (shared unless
// deltas are pending, then freshly merged; callers must not modify).
func (s *Store) ByItem(it ItemID) []Rating {
	s.mustFrozen("ByItem")
	if s.deltas.count.Load() == 0 {
		return s.state.Load().byItem[it]
	}
	dl := s.deltas
	dl.itemMu.RLock()
	defer dl.itemMu.RUnlock()
	base := s.state.Load().byItem[it]
	drs := dl.byItem[it]
	if len(drs) == 0 {
		return base
	}
	return mergeByUser(base, drs)
}

// Value returns the rating of u for it and whether it exists. When the
// log holds several observations of the same (user, item) pair the
// first one wins — the same leftmost-entry rule a cold rebuild's
// stable sort produces.
func (s *Store) Value(u UserID, it ItemID) (float64, bool) {
	if !s.frozen {
		for _, r := range s.byUser[u] {
			if r.Item == it {
				return r.Value, true
			}
		}
		return 0, false
	}
	if s.deltas.count.Load() == 0 {
		return s.state.Load().baseValue(u, it)
	}
	d := s.deltas.userShard(u)
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v, ok := s.state.Load().baseValue(u, it); ok {
		return v, true
	}
	for _, r := range d.byUser[u] {
		if r.Item == it {
			return r.Value, true
		}
	}
	return 0, false
}

func (st *storeState) baseValue(u UserID, it ItemID) (float64, bool) {
	rs := st.part(u).byUser[u]
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Item >= it })
	if i < len(rs) && rs[i].Item == it {
		return rs[i].Value, true
	}
	return 0, false
}

// HasRated reports whether user u has rated item it.
func (s *Store) HasRated(u UserID, it ItemID) bool {
	if s.frozen && s.deltas.count.Load() == 0 {
		if st := s.state.Load(); st.maskWords > 0 {
			return st.part(u).rated[u].Has(it)
		}
	}
	_, ok := s.Value(u, it)
	return ok
}

// NumRatings returns the number of ratings stored, including pending
// deltas.
func (s *Store) NumRatings() int {
	if !s.frozen {
		return s.nRatings
	}
	if s.deltas.count.Load() == 0 {
		return s.state.Load().nRatings
	}
	dl := s.deltas
	dl.itemMu.RLock()
	defer dl.itemMu.RUnlock()
	return s.state.Load().nRatings + len(dl.recs)
}

// Stats computes the Table-5 style summary, including pending deltas.
// The mean accumulates base-then-delta in append order, the same float
// summation order a cold rebuild of the full log uses.
func (s *Store) Stats() Stats {
	s.mustFrozen("Stats")
	dl := s.deltas
	dl.itemMu.RLock()
	st := s.state.Load()
	n := st.nRatings + len(dl.recs)
	sum := st.sumVal
	for _, r := range dl.recs {
		sum += r.Value
	}
	dl.itemMu.RUnlock()
	stats := Stats{
		Users:   len(st.users),
		Items:   len(st.items),
		Ratings: n,
	}
	if n > 0 {
		stats.MeanRating = sum / float64(n)
	}
	if stats.Users > 0 {
		stats.MeanRatingsPerUser = float64(stats.Ratings) / float64(stats.Users)
	}
	return stats
}

// ItemPopularity returns items sorted by descending rating count — the
// paper's "popular set" selection (top-50 by popularity) uses this.
// The ranking is precomputed (and kept current by the delta overlay);
// this returns a fresh copy the caller may reorder.
func (s *Store) ItemPopularity() []ItemID {
	s.mustFrozen("ItemPopularity")
	ranked := s.PopularityRanked()
	out := make([]ItemID, len(ranked))
	copy(out, ranked)
	return out
}

// PopularityRanked returns the precomputed popularity ranking as a
// shared slice for hot paths. Callers must not modify it. With pending
// deltas the overlay ranking (recomputed at each Apply) is returned;
// it matches what a cold rebuild of base+deltas would precompute.
func (s *Store) PopularityRanked() []ItemID {
	s.mustFrozen("PopularityRanked")
	if s.deltas.count.Load() == 0 {
		return s.state.Load().popRanked
	}
	dl := s.deltas
	dl.itemMu.RLock()
	defer dl.itemMu.RUnlock()
	if dl.popRanked != nil {
		return dl.popRanked
	}
	return s.state.Load().popRanked
}

// ItemRatingVariance returns the population variance of the ratings of
// item it — the paper's "diversity set" picks the 25 highest-variance
// items among the top-200 popular ones.
func (s *Store) ItemRatingVariance(it ItemID) float64 {
	rs := s.ByItem(it)
	n := len(rs)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.Value
	}
	mean := sum / float64(n)
	var ss float64
	for _, r := range rs {
		d := r.Value - mean
		ss += d * d
	}
	return ss / float64(n)
}

// PopularSet returns the n most-rated items (the paper uses n=50).
func (s *Store) PopularSet(n int) []ItemID {
	pop := s.ItemPopularity()
	if n > len(pop) {
		n = len(pop)
	}
	return pop[:n]
}

// DiversitySet returns the nDiverse items with the highest rating
// variance among the topPop most popular items (the paper uses
// nDiverse=25, topPop=200).
func (s *Store) DiversitySet(nDiverse, topPop int) []ItemID {
	pop := s.PopularSet(topPop)
	cp := make([]ItemID, len(pop))
	copy(cp, pop)
	sort.Slice(cp, func(i, j int) bool {
		vi, vj := s.ItemRatingVariance(cp[i]), s.ItemRatingVariance(cp[j])
		if vi != vj {
			return vi > vj
		}
		return cp[i] < cp[j]
	})
	if nDiverse > len(cp) {
		nDiverse = len(cp)
	}
	out := make([]ItemID, nDiverse)
	copy(out, cp[:nDiverse])
	return out
}

func (s *Store) mustFrozen(op string) {
	if !s.frozen {
		panic("dataset: " + op + " requires a frozen Store")
	}
}
