// Package server is the serving layer in front of the recommendation
// engine: a request coalescer that buffers live single-group traffic
// into RecommendBatch windows, and an HTTP front end exposing it. The
// engine's shared candidate pools and CF row cache pay off when many
// requests travel through one batch; the coalescer manufactures those
// batches from independent concurrent callers, trading a bounded
// latency budget (the window) for batch amortization. See DESIGN.md's
// "Serving layer" section.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Dispatcher executes one coalesced window of requests and returns
// positionally aligned results — the contract of
// repro.(*World).RecommendBatch, which is the production dispatcher.
type Dispatcher func([]repro.Request) []repro.Result

// ErrClosed is returned by Submit after Close has begun draining.
var ErrClosed = errors.New("server: coalescer closed")

// ErrOverloaded is returned by Submit when the number of parked
// callers has reached the LimitPending bound — the load-shedding
// signal the HTTP layer maps to 429 with a Retry-After.
var ErrOverloaded = errors.New("server: too many pending requests")

// ErrDispatch marks a dispatcher that broke the positional-alignment
// contract (fewer results than requests). It is a server fault, not a
// client one; the HTTP layer maps it to a 500.
var ErrDispatch = errors.New("server: dispatcher result mismatch")

// Defaults for NewCoalescer's window and batch bound. 5ms is a latency
// budget invisible next to a cold recommendation (tens of ms) yet wide
// enough to capture a burst; 64 keeps a worst-case window near the
// Figure 6 sweep sizes the engine is benchmarked at.
const (
	DefaultWindow   = 5 * time.Millisecond
	DefaultMaxBatch = 64
)

// waiter is one caller parked in the open window. ch is buffered so
// the dispatch goroutine never blocks on a caller that gave up
// (context cancellation abandons the channel, not the request).
type waiter struct {
	req repro.Request
	ch  chan repro.Result
}

// CoalescerStats is a snapshot of the coalescer's counters. Windows is
// the number of Dispatcher invocations; the acceptance property of the
// whole subsystem is Windows < Requests under concurrent load.
type CoalescerStats struct {
	// Requests is the number of accepted Submit calls.
	Requests uint64 `json:"requests"`
	// Windows is the number of dispatched batches, split by what
	// closed them: the batch bound, the latency budget, or a drain.
	Windows     uint64 `json:"windows"`
	SizeCloses  uint64 `json:"size_closes"`
	TimerCloses uint64 `json:"timer_closes"`
	DrainCloses uint64 `json:"drain_closes"`
	// MaxWindowSize is the largest batch dispatched so far.
	MaxWindowSize int `json:"max_window_size"`
	// MeanWindowSize is Requests over Windows for dispatched requests.
	MeanWindowSize float64 `json:"mean_window_size"`
	// Pending is the size of the currently open window.
	Pending int `json:"pending"`
	// Parked counts callers still awaiting a result — the open window
	// plus in-flight dispatches. It is the load-shedding signal.
	Parked int `json:"parked"`
	// Shed counts Submits rejected with ErrOverloaded.
	Shed uint64 `json:"shed"`
}

// Coalescer buffers concurrent single-request traffic into dispatch
// windows. A window opens when a request arrives at an empty buffer
// and closes on the first of: the latency budget expiring, the buffer
// reaching the batch bound, or Close draining. Each closed window is
// dispatched on its own goroutine and every parked caller receives its
// positionally aligned result.
//
// A Coalescer is safe for any number of concurrent Submit calls.
type Coalescer struct {
	dispatch Dispatcher
	window   time.Duration
	maxBatch int
	// maxPending bounds parked callers (0 = unbounded); see
	// LimitPending.
	maxPending int

	mu      sync.Mutex
	pending []waiter
	// gen identifies the open window; a timer that fires after its
	// window was already cut (by size or drain) sees a newer gen and
	// does nothing.
	gen   uint64
	timer *time.Timer
	// deadline is when the open window's timer fires; a caller with a
	// tighter per-request budget pulls it earlier.
	deadline time.Time
	closed   bool
	// inflight tracks dispatch goroutines so Close can drain them.
	inflight sync.WaitGroup
	// parked counts callers awaiting results; decremented by dispatch
	// goroutines, hence atomic.
	parked atomic.Int64

	// Counters, guarded by mu (every transition already holds it).
	requests    uint64
	sizeCloses  uint64
	timerCloses uint64
	drainCloses uint64
	shed        uint64
	dispatched  uint64
	maxWindow   int
}

// NewCoalescer builds a coalescer over dispatch with the given latency
// budget and batch bound (defaults for non-positive values). maxBatch
// = 1 degenerates to per-request dispatch — the uncoalesced baseline
// the benchmarks compare against.
func NewCoalescer(dispatch Dispatcher, window time.Duration, maxBatch int) *Coalescer {
	if window <= 0 {
		window = DefaultWindow
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	return &Coalescer{dispatch: dispatch, window: window, maxBatch: maxBatch}
}

// Window returns the latency budget.
func (c *Coalescer) Window() time.Duration { return c.window }

// MaxBatch returns the batch bound.
func (c *Coalescer) MaxBatch() int { return c.maxBatch }

// LimitPending bounds the number of parked callers (open window plus
// in-flight dispatches); Submits beyond the bound fail fast with
// ErrOverloaded instead of queueing unboundedly. n <= 0 removes the
// bound. Call before the coalescer starts serving traffic (it is not
// synchronized against concurrent Submits).
func (c *Coalescer) LimitPending(n int) { c.maxPending = n }

// MaxPending returns the parked-caller bound (0 = unbounded).
func (c *Coalescer) MaxPending() int { return c.maxPending }

// Submit parks req in the open window and returns its result once the
// window is dispatched. It returns ErrClosed if Close has begun,
// ErrOverloaded if the parked-caller bound is reached, or ctx's error
// if the caller gives up first — the request itself is still
// dispatched and its result discarded.
func (c *Coalescer) Submit(ctx context.Context, req repro.Request) (repro.Result, error) {
	return c.SubmitWithin(ctx, req, 0)
}

// SubmitWithin is Submit with a per-caller coalescing budget: when
// maxWait is positive and smaller than the remaining window, the open
// window's deadline is pulled forward so this caller waits at most
// maxWait before its window dispatches. maxWait is clamped to the
// configured window (a caller can trade batching for freshness, not
// extend another caller's delay); 0 or negative means the full window.
func (c *Coalescer) SubmitWithin(ctx context.Context, req repro.Request, maxWait time.Duration) (repro.Result, error) {
	// A caller that is already cancelled must not occupy a window
	// slot: its result would be discarded, but the dispatch (and any
	// LimitPending budget it consumed) would still happen.
	if err := ctx.Err(); err != nil {
		return repro.Result{}, err
	}
	w := waiter{req: req, ch: make(chan repro.Result, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return repro.Result{}, ErrClosed
	}
	if c.maxPending > 0 && int(c.parked.Load()) >= c.maxPending {
		c.shed++
		c.mu.Unlock()
		return repro.Result{}, ErrOverloaded
	}
	c.requests++
	c.parked.Add(1)
	c.pending = append(c.pending, w)
	if maxWait <= 0 || maxWait > c.window {
		maxWait = c.window
	}
	switch {
	case len(c.pending) >= c.maxBatch:
		c.sizeCloses++
		c.cutLocked()
	case len(c.pending) == 1:
		gen := c.gen
		c.deadline = time.Now().Add(maxWait)
		c.timer = time.AfterFunc(maxWait, func() { c.timerFire(gen) })
	default:
		// Joining an open window: honor this caller's tighter budget
		// by re-arming the window timer to the earlier deadline.
		if want := time.Now().Add(maxWait); c.timer != nil && want.Before(c.deadline) {
			c.timer.Stop()
			gen := c.gen
			c.deadline = want
			c.timer = time.AfterFunc(maxWait, func() { c.timerFire(gen) })
		}
	}
	c.mu.Unlock()

	select {
	case res := <-w.ch:
		return res, nil
	case <-ctx.Done():
		return repro.Result{}, ctx.Err()
	}
}

// timerFire closes the window the timer was armed for, unless that
// window was already cut.
func (c *Coalescer) timerFire(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || len(c.pending) == 0 {
		return // stale: the window was cut by size or drain
	}
	c.timerCloses++
	c.cutLocked()
}

// cutLocked dispatches the open window. Callers hold mu and have
// already attributed the close to a counter.
func (c *Coalescer) cutLocked() {
	batch := c.pending
	c.pending = nil
	c.gen++
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if len(batch) == 0 {
		return
	}
	c.dispatched += uint64(len(batch))
	if len(batch) > c.maxWindow {
		c.maxWindow = len(batch)
	}
	c.inflight.Add(1)
	go c.run(batch)
}

// run executes one window and fans results back to the parked callers.
func (c *Coalescer) run(batch []waiter) {
	defer c.inflight.Done()
	reqs := make([]repro.Request, len(batch))
	for i, w := range batch {
		reqs[i] = w.req
	}
	results := c.dispatch(reqs)
	for i, w := range batch {
		if i < len(results) {
			w.ch <- results[i]
		} else {
			w.ch <- repro.Result{Err: fmt.Errorf("%w: %d results for %d requests", ErrDispatch, len(results), len(reqs))}
		}
		c.parked.Add(-1)
	}
}

// Close drains the coalescer: the open window is dispatched
// immediately, in-flight windows run to completion, and every parked
// caller receives its result. Subsequent Submit calls return
// ErrClosed. Close is idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		if len(c.pending) > 0 {
			c.drainCloses++
			c.cutLocked()
		}
	}
	c.mu.Unlock()
	c.inflight.Wait()
}

// Stats snapshots the coalescer's counters.
func (c *Coalescer) Stats() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoalescerStats{
		Requests:      c.requests,
		SizeCloses:    c.sizeCloses,
		TimerCloses:   c.timerCloses,
		DrainCloses:   c.drainCloses,
		MaxWindowSize: c.maxWindow,
		Pending:       len(c.pending),
		Parked:        int(c.parked.Load()),
		Shed:          c.shed,
	}
	st.Windows = st.SizeCloses + st.TimerCloses + st.DrainCloses
	if st.Windows > 0 {
		st.MeanWindowSize = float64(c.dispatched) / float64(st.Windows)
	}
	return st
}
