// Command datagen emits the synthetic substrates to disk: a
// MovieLens-format ratings file (UserID::MovieID::Rating::Timestamp),
// a friendship edge list and a page-like event log, so other tooling
// can consume the same deterministic world the experiments use.
//
// Usage:
//
//	datagen -out DIR [-scale quick|default|1m] [-seed N]
//
// Files written to DIR: ratings.dat, friendships.csv, pagelikes.csv.
package main

import (
	"bufio"
	"flag"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/social"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		out   = flag.String("out", "", "output directory (required)")
		scale = flag.String("scale", "default", "dataset scale: quick, default, 1m")
		seed  = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("creating %s: %v", *out, err)
	}

	dcfg := dataset.DefaultSynthConfig()
	switch *scale {
	case "quick":
		dcfg.Users = 300
		dcfg.Items = 1200
		dcfg.TargetRatings = 30_000
	case "default":
	case "1m":
		dcfg = dataset.MovieLens1MConfig()
	default:
		log.Fatalf("unknown scale %q (want quick, default, 1m)", *scale)
	}
	dcfg.Seed = *seed
	scfg := social.DefaultSynthConfig()
	scfg.Seed = *seed + 1
	dcfg.ParticipantUsers = scfg.Users
	dcfg.ParticipantMinRatings = 30
	dcfg.ParticipantMaxRatings = 60
	dcfg.ParticipantPoolSize = 75
	dcfg.ParticipantExtraMean = 100

	log.Printf("generating ratings (%d users, %d items, %d ratings)...", dcfg.Users, dcfg.Items, dcfg.TargetRatings)
	sy, err := dataset.Generate(dcfg)
	if err != nil {
		log.Fatalf("generating dataset: %v", err)
	}
	writeFile(filepath.Join(*out, "ratings.dat"), func(w *bufio.Writer) error {
		return dataset.WriteMovieLensRatings(w, sy.Store)
	})
	md := dataset.GenerateMetadata(sy, *seed+2)
	writeFile(filepath.Join(*out, "movies.dat"), func(w *bufio.Writer) error {
		return md.WriteMovies(w)
	})
	writeFile(filepath.Join(*out, "users.dat"), func(w *bufio.Writer) error {
		return md.WriteUsers(w)
	})

	log.Printf("generating social network (%d users)...", scfg.Users)
	sn, err := social.GenerateNetwork(scfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}
	writeFile(filepath.Join(*out, "friendships.csv"), func(w *bufio.Writer) error {
		return social.WriteFriendships(w, sn.Network)
	})
	writeFile(filepath.Join(*out, "pagelikes.csv"), func(w *bufio.Writer) error {
		return social.WritePageLikes(w, sn.Network)
	})
	st := sy.Store.Stats()
	log.Printf("done: %d ratings, %d like events → %s", st.Ratings, sn.Network.NumLikes(), *out)
}

func writeFile(path string, fill func(*bufio.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating %s: %v", path, err)
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("flushing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("closing %s: %v", path, err)
	}
	log.Printf("wrote %s", path)
}
