// Throughput benchmarks for the concurrent engine, modeled on the
// canonical-session benchmark idiom: a fixed request mix replayed
// against one warmed World at increasing goroutine counts, reporting
// ops/sec so the scaling curve is read straight off the output:
//
//	go test -bench BenchmarkRecommendParallel -benchtime 2s
//
// The acceptance bar is ≥2× ops/sec at 4 goroutines versus the
// 1-goroutine sequential path on QuickConfig.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/dataset"
)

var (
	parBenchOnce   sync.Once
	parBenchWorld  *repro.World
	parBenchGroups [][]dataset.UserID
	parBenchErr    error
)

// parallelBenchWorld builds one QuickConfig world with a fixed group
// mix and warms every cache layer, so the timed region measures steady
// -state serving throughput rather than first-touch neighborhood
// computation.
func parallelBenchWorld(b *testing.B) (*repro.World, [][]dataset.UserID) {
	b.Helper()
	parBenchOnce.Do(func() {
		cfg := repro.QuickConfig()
		// One worker per call: within-call assembly stays sequential,
		// so the goroutine count of the benchmark is the only source
		// of parallelism being measured.
		cfg.AssemblyWorkers = 1
		w, err := repro.NewWorld(cfg)
		if err != nil {
			parBenchErr = err
			return
		}
		// A mix of group sizes over light-history participants (heavy
		// raters can exhaust the small catalog's candidate pool).
		var light []dataset.UserID
		for _, u := range w.Participants() {
			if n := len(w.Ratings().ByUser(u)); n > 0 && n < 200 {
				light = append(light, u)
			}
		}
		if len(light) < 24 {
			parBenchErr = fmt.Errorf("only %d light participants", len(light))
			return
		}
		var groups [][]dataset.UserID
		for i := 0; i < 16; i++ {
			size := 2 + i%4
			groups = append(groups, light[i:i+size])
		}
		parBenchWorld, parBenchGroups = w, groups
	})
	if parBenchErr != nil {
		b.Fatalf("bench world: %v", parBenchErr)
	}
	return parBenchWorld, parBenchGroups
}

func benchOptions() repro.Options {
	return repro.Options{K: 10, NumItems: 600}
}

// BenchmarkRecommendParallel measures Recommend throughput at 1, 4,
// and NumCPU concurrent callers against one shared World.
func BenchmarkRecommendParallel(b *testing.B) {
	w, groups := parallelBenchWorld(b)
	opt := benchOptions()
	// Warm neighborhoods and prediction rows once for the whole mix.
	for _, g := range groups {
		if _, err := w.Recommend(g, opt); err != nil {
			b.Fatalf("warmup: %v", err)
		}
	}
	var counts []int
	seen := map[int]bool{}
	for _, g := range []int{1, 4, runtime.NumCPU()} {
		if !seen[g] {
			seen[g] = true
			counts = append(counts, g)
		}
	}
	for _, gor := range counts {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for n := 0; n < gor; n++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						g := groups[i%int64(len(groups))]
						if _, err := w.Recommend(g, opt); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// BenchmarkRecommendBatch measures the batch facade on the same mix —
// the Figure 6 sweep shape, many groups per call.
func BenchmarkRecommendBatch(b *testing.B) {
	w, groups := parallelBenchWorld(b)
	opt := benchOptions()
	reqs := make([]repro.Request, len(groups))
	for i, g := range groups {
		reqs[i] = repro.Request{Group: g, Options: opt}
	}
	if res := w.RecommendBatch(reqs); res[0].Err != nil {
		b.Fatalf("warmup: %v", res[0].Err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, res := range w.RecommendBatch(reqs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(reqs))/b.Elapsed().Seconds(), "groups/sec")
}
