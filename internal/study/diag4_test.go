package study

import (
	"math"
	"testing"

	"repro"
)

// TestDiagnosticAffinityAlignment measures how well the engine's
// measured affinities (static-only and temporal) track the latent
// ground-truth affinity of the synthetic network. The temporal model
// must correlate positively, and at least as well as static alone, for
// the quality experiments to be meaningful.
func TestDiagnosticAffinityAlignment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w, err := repro.NewWorld(repro.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := w.Participants()
	now := w.Timeline().End - 1
	var trueA, statA, discA, contA []float64
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			trueA = append(trueA, w.Network().TrueAffinity(ps[i], ps[j], now))
			statA = append(statA, w.PairAffinity(ps[i], ps[j], repro.TimeAgnostic, -1))
			discA = append(discA, w.PairAffinity(ps[i], ps[j], repro.Discrete, -1))
			contA = append(contA, w.PairAffinity(ps[i], ps[j], repro.Continuous, -1))
		}
	}
	cStat := pearson(trueA, statA)
	cDisc := pearson(trueA, discA)
	cCont := pearson(trueA, contA)
	t.Logf("corr(true, static)=%.3f corr(true, discrete)=%.3f corr(true, continuous)=%.3f", cStat, cDisc, cCont)
	if cDisc < 0.2 {
		t.Errorf("discrete temporal affinity barely tracks ground truth (r=%.3f)", cDisc)
	}
	if cDisc < cStat-0.05 {
		t.Errorf("adding the temporal component hurt alignment: discrete r=%.3f vs static r=%.3f", cDisc, cStat)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
