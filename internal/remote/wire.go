package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/cf"
	"repro/internal/dataset"
	"repro/internal/liststore"
)

// Payload encoding: flat little-endian fields appended onto a byte
// slice, decoded by a cursor that fails loudly on truncation. The hot
// messages (view chunks, predict rows) are raw float64 arrays — no
// per-call reflection, no schema — and the cold, shape-heavy stats
// reply rides as JSON inside its frame, where the wire cost is
// irrelevant.

type wireWriter struct{ b []byte }

func (w *wireWriter) u8(v uint8)    { w.b = append(w.b, v) }
func (w *wireWriter) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wireWriter) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wireWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *wireWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wireWriter) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *wireWriter) f64s(vs []float64) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

// errShortPayload marks a payload shorter than its own fields claim —
// a peer encoding bug, surfaced as a protocol violation.
var errShortPayload = fmt.Errorf("%w: short payload", ErrProtocol)

type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = errShortPayload
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}
func (r *wireReader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}
func (r *wireReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}
func (r *wireReader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}
func (r *wireReader) i64() int64   { return int64(r.u64()) }
func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n > len(r.b)-r.off {
		if r.err == nil {
			r.err = errShortPayload
		}
		return nil
	}
	return r.take(n)
}
func (r *wireReader) f64s() []float64 {
	n := int(r.u32())
	if r.err != nil || n*8 > len(r.b)-r.off {
		if r.err == nil {
			r.err = errShortPayload
		}
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// hello carries the router's world identity; the worker refuses a
// connection whose fingerprint or shard count disagrees with its own
// (ErrConfigMismatch) — two processes built from different worlds
// cannot serve bit-identical bytes, so the seam fails closed.
type hello struct {
	Fingerprint uint64
	Shards      uint32
}

func encodeHello(h hello) []byte {
	var w wireWriter
	w.u64(h.Fingerprint)
	w.u32(h.Shards)
	return w.b
}

func decodeHello(p []byte) (hello, error) {
	r := wireReader{b: p}
	h := hello{Fingerprint: r.u64(), Shards: r.u32()}
	return h, r.err
}

func encodeHelloAck(owned []int) []byte {
	var w wireWriter
	w.u32(uint32(len(owned)))
	for _, s := range owned {
		w.u32(uint32(s))
	}
	return w.b
}

func decodeHelloAck(p []byte) ([]int, error) {
	r := wireReader{b: p}
	n := int(r.u32())
	if r.err != nil || n > (len(p)-4)/4 {
		return nil, errShortPayload
	}
	owned := make([]int, n)
	for i := range owned {
		owned[i] = int(r.u32())
	}
	return owned, r.err
}

func encodeUser(u dataset.UserID) []byte {
	var w wireWriter
	w.u64(uint64(u))
	return w.b
}

func decodeUser(p []byte) (dataset.UserID, error) {
	r := wireReader{b: p}
	u := dataset.UserID(r.u64())
	return u, r.err
}

// viewChunk is one slice of a view's pool-order normalized scores. A
// view response is a sequence of chunks — progress frames, then the
// terminal result carrying the last chunk — so a big pool streams
// without one giant frame, and the progress-then-terminal contract is
// exercised by the data plane itself.
type viewChunk struct {
	Total  uint32 // pool length (every chunk repeats it)
	Offset uint32 // position of this chunk's first score
	Scores []float64
}

func encodeViewChunk(c viewChunk) []byte {
	var w wireWriter
	w.u32(c.Total)
	w.u32(c.Offset)
	w.f64s(c.Scores)
	return w.b
}

func decodeViewChunk(p []byte) (viewChunk, error) {
	r := wireReader{b: p}
	c := viewChunk{Total: r.u32(), Offset: r.u32(), Scores: r.f64s()}
	return c, r.err
}

type predictReq struct {
	User  dataset.UserID
	Items []dataset.ItemID
}

func encodePredictReq(q predictReq) []byte {
	var w wireWriter
	w.u64(uint64(q.User))
	w.u32(uint32(len(q.Items)))
	for _, it := range q.Items {
		w.u64(uint64(it))
	}
	return w.b
}

func decodePredictReq(p []byte) (predictReq, error) {
	r := wireReader{b: p}
	q := predictReq{User: dataset.UserID(r.u64())}
	n := int(r.u32())
	if r.err != nil || n > (len(p)-12)/8 {
		return predictReq{}, errShortPayload
	}
	q.Items = make([]dataset.ItemID, n)
	for i := range q.Items {
		q.Items[i] = dataset.ItemID(r.u64())
	}
	return q, r.err
}

func encodeF64s(vs []float64) []byte {
	var w wireWriter
	w.f64s(vs)
	return w.b
}

func decodeF64s(p []byte) ([]float64, error) {
	r := wireReader{b: p}
	vs := r.f64s()
	return vs, r.err
}

// applyReq is one fanned-out rating stamped with the router's global
// apply sequence. The sequence makes the write path idempotent — a
// redelivered apply (the router retrying after a lost ack) is
// recognized and acked without a second ingest — and lets a replica
// detect that it missed an earlier apply (a gap) and refuse to serve
// a diverged state.
type applyReq struct {
	Seq    uint64
	Rating dataset.Rating
}

func encodeApplyReq(q applyReq) []byte {
	var w wireWriter
	w.u64(q.Seq)
	w.u64(uint64(q.Rating.User))
	w.u64(uint64(q.Rating.Item))
	w.f64(q.Rating.Value)
	w.i64(q.Rating.Time)
	return w.b
}

func decodeApplyReq(p []byte) (applyReq, error) {
	r := wireReader{b: p}
	q := applyReq{
		Seq: r.u64(),
		Rating: dataset.Rating{
			User:  dataset.UserID(r.u64()),
			Item:  dataset.ItemID(r.u64()),
			Value: r.f64(),
			Time:  r.i64(),
		},
	}
	return q, r.err
}

// ApplyAck acknowledges a fanned-out rating with the worker's own
// delta-log counters after the apply — the router's cross-check that
// the replica ingested what it did.
type ApplyAck struct {
	Pending int
	Applied int64
	Folds   int64
	Folded  int64
}

func encodeApplyAck(a ApplyAck) []byte {
	var w wireWriter
	w.i64(int64(a.Pending))
	w.i64(a.Applied)
	w.i64(a.Folds)
	w.i64(a.Folded)
	return w.b
}

func decodeApplyAck(p []byte) (ApplyAck, error) {
	r := wireReader{b: p}
	a := ApplyAck{
		Pending: int(r.i64()),
		Applied: r.i64(),
		Folds:   r.i64(),
		Folded:  r.i64(),
	}
	return a, r.err
}

func encodeBool(b bool) []byte {
	if b {
		return []byte{1}
	}
	return []byte{0}
}

func decodeBool(p []byte) (bool, error) {
	if len(p) != 1 {
		return false, errShortPayload
	}
	return p[0] != 0, nil
}

// ShardStats is one owned shard's cache counters in wire form — the
// worker-side slice of the router's per-shard /v1/stats breakdown.
// JSON-encoded inside its frame: stats are cold-path and shape-heavy.
type ShardStats struct {
	Shard         int                  `json:"shard"`
	RowCache      cf.CacheStats        `json:"row_cache"`
	ListStore     liststore.ShardStats `json:"list_store"`
	Neighborhoods cf.CacheStats        `json:"neighborhoods"`
}

func encodeStats(ss []ShardStats) ([]byte, error) { return json.Marshal(ss) }

func decodeStats(p []byte) ([]ShardStats, error) {
	var ss []ShardStats
	if err := json.Unmarshal(p, &ss); err != nil {
		return nil, fmt.Errorf("%w: decoding stats: %v", ErrProtocol, err)
	}
	return ss, nil
}

// Application-level error codes relayed in kindError frames. The
// client maps the dataset trio back onto the dataset sentinels so the
// HTTP ingest surface rejects a bad remote rating with exactly the
// code an in-process world would have produced.
const (
	codeUnknownUser = "unknown_user"
	codeUnknownItem = "unknown_item"
	codeBadRating   = "bad_rating"
	codeWrongShard  = "wrong_shard"
	codeMismatch    = "config_mismatch"
	codeReplicaGap  = "replica_gap"
	codeInternal    = "internal"
)

// AppError is an application-level failure relayed from a worker —
// the request was delivered and refused, as opposed to the transport
// sentinels where it never completed.
type AppError struct {
	Code string
	Msg  string
}

func (e *AppError) Error() string { return "remote: worker error " + e.Code + ": " + e.Msg }

func encodeAppError(code, msg string) []byte {
	var w wireWriter
	w.bytes([]byte(code))
	w.bytes([]byte(msg))
	return w.b
}

func decodeAppError(p []byte) error {
	r := wireReader{b: p}
	code := string(r.bytes())
	msg := string(r.bytes())
	if r.err != nil {
		return r.err
	}
	switch code {
	case codeUnknownUser:
		return fmt.Errorf("remote: %w: %s", dataset.ErrUnknownUser, msg)
	case codeUnknownItem:
		return fmt.Errorf("remote: %w: %s", dataset.ErrUnknownItem, msg)
	case codeBadRating:
		return fmt.Errorf("remote: %w: %s", dataset.ErrBadValue, msg)
	case codeMismatch:
		return fmt.Errorf("%w: %s", ErrConfigMismatch, msg)
	case codeReplicaGap:
		return fmt.Errorf("%w: %s", ErrReplicaGap, msg)
	default:
		return &AppError{Code: code, Msg: msg}
	}
}
