// Package dataset provides the collaborative-rating substrate of the
// reproduction: an in-memory rating store, a loader for the MovieLens
// "::"-separated dump format, and a synthetic generator that reproduces
// the marginal statistics of the MovieLens 1M dataset used by the paper
// (Table 5: 6,040 users, 3,952 movies, 1,000,209 ratings on a 1..5
// scale with a long-tailed item popularity distribution).
package dataset

import (
	"fmt"
	"sort"
)

// UserID identifies a user. IDs are dense small integers starting at 0
// so that stores can be backed by slices.
type UserID int

// ItemID identifies an item (a movie in the paper's evaluation).
type ItemID int

// Rating is one (user, item, value, timestamp) observation. Value is on
// the paper's 1..5 scale; Time is a Unix timestamp in seconds.
type Rating struct {
	User UserID
	Item ItemID
	// Value is the star rating, 1..5 (5 best).
	Value float64
	// Time is the rating timestamp (Unix seconds). The group
	// recommendation pipeline does not need it, but the MovieLens
	// format carries it and the loader preserves it.
	Time int64
}

// Stats summarises a store; it is what Table 5 of the paper reports.
type Stats struct {
	Users   int
	Items   int
	Ratings int
	// MeanRating is the average rating value.
	MeanRating float64
	// MeanRatingsPerUser is Ratings / Users.
	MeanRatingsPerUser float64
}

// Store is an in-memory collaborative rating database with both
// user-major and item-major access paths. It is immutable after
// Freeze; all query methods are then safe for concurrent use.
type Store struct {
	byUser   map[UserID][]Rating
	byItem   map[ItemID][]Rating
	users    []UserID
	items    []ItemID
	nRatings int
	sumVal   float64
	frozen   bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byUser: make(map[UserID][]Rating),
		byItem: make(map[ItemID][]Rating),
	}
}

// Add appends one rating. It panics if the store is frozen (adding to a
// frozen store is a programming error in this codebase, never a data
// condition) and returns an error for out-of-domain values so that
// loaders can surface malformed input lines.
func (s *Store) Add(r Rating) error {
	if s.frozen {
		panic("dataset: Add on frozen Store")
	}
	if r.Value < 1 || r.Value > 5 {
		return fmt.Errorf("dataset: rating value %.2f for user %d item %d outside [1,5]", r.Value, r.User, r.Item)
	}
	s.byUser[r.User] = append(s.byUser[r.User], r)
	s.byItem[r.Item] = append(s.byItem[r.Item], r)
	s.nRatings++
	s.sumVal += r.Value
	return nil
}

// Freeze sorts the internal indexes and makes the store read-only.
// User lists are sorted by item, item lists by user, which gives
// deterministic iteration and enables merge-style similarity scans.
func (s *Store) Freeze() {
	if s.frozen {
		return
	}
	s.users = s.users[:0]
	for u, rs := range s.byUser {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Item < rs[j].Item })
		s.users = append(s.users, u)
	}
	sort.Slice(s.users, func(i, j int) bool { return s.users[i] < s.users[j] })
	s.items = s.items[:0]
	for it, rs := range s.byItem {
		sort.Slice(rs, func(i, j int) bool { return rs[i].User < rs[j].User })
		s.items = append(s.items, it)
	}
	sort.Slice(s.items, func(i, j int) bool { return s.items[i] < s.items[j] })
	s.frozen = true
}

// Frozen reports whether Freeze has been called.
func (s *Store) Frozen() bool { return s.frozen }

// Users returns all user IDs in ascending order. The store must be
// frozen. The returned slice is shared; callers must not modify it.
func (s *Store) Users() []UserID {
	s.mustFrozen("Users")
	return s.users
}

// Items returns all item IDs in ascending order (shared slice).
func (s *Store) Items() []ItemID {
	s.mustFrozen("Items")
	return s.items
}

// ByUser returns the ratings of u sorted by item (shared slice; may be
// nil if u rated nothing).
func (s *Store) ByUser(u UserID) []Rating {
	s.mustFrozen("ByUser")
	return s.byUser[u]
}

// ByItem returns the ratings of item it sorted by user (shared slice).
func (s *Store) ByItem(it ItemID) []Rating {
	s.mustFrozen("ByItem")
	return s.byItem[it]
}

// Value returns the rating of u for it and whether it exists.
func (s *Store) Value(u UserID, it ItemID) (float64, bool) {
	rs := s.byUser[u]
	lo, hi := 0, len(rs)
	if s.frozen {
		i := sort.Search(len(rs), func(i int) bool { return rs[i].Item >= it })
		if i < len(rs) && rs[i].Item == it {
			return rs[i].Value, true
		}
		return 0, false
	}
	for i := lo; i < hi; i++ {
		if rs[i].Item == it {
			return rs[i].Value, true
		}
	}
	return 0, false
}

// HasRated reports whether user u has rated item it.
func (s *Store) HasRated(u UserID, it ItemID) bool {
	_, ok := s.Value(u, it)
	return ok
}

// NumRatings returns the number of ratings stored.
func (s *Store) NumRatings() int { return s.nRatings }

// Stats computes the Table-5 style summary.
func (s *Store) Stats() Stats {
	s.mustFrozen("Stats")
	st := Stats{
		Users:   len(s.users),
		Items:   len(s.items),
		Ratings: s.nRatings,
	}
	if s.nRatings > 0 {
		st.MeanRating = s.sumVal / float64(s.nRatings)
	}
	if st.Users > 0 {
		st.MeanRatingsPerUser = float64(st.Ratings) / float64(st.Users)
	}
	return st
}

// ItemPopularity returns items sorted by descending rating count — the
// paper's "popular set" selection (top-50 by popularity) uses this.
func (s *Store) ItemPopularity() []ItemID {
	s.mustFrozen("ItemPopularity")
	out := make([]ItemID, len(s.items))
	copy(out, s.items)
	sort.Slice(out, func(i, j int) bool {
		ci, cj := len(s.byItem[out[i]]), len(s.byItem[out[j]])
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// ItemRatingVariance returns the population variance of the ratings of
// item it — the paper's "diversity set" picks the 25 highest-variance
// items among the top-200 popular ones.
func (s *Store) ItemRatingVariance(it ItemID) float64 {
	rs := s.byItem[it]
	n := len(rs)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.Value
	}
	mean := sum / float64(n)
	var ss float64
	for _, r := range rs {
		d := r.Value - mean
		ss += d * d
	}
	return ss / float64(n)
}

// PopularSet returns the n most-rated items (the paper uses n=50).
func (s *Store) PopularSet(n int) []ItemID {
	pop := s.ItemPopularity()
	if n > len(pop) {
		n = len(pop)
	}
	return pop[:n]
}

// DiversitySet returns the nDiverse items with the highest rating
// variance among the topPop most popular items (the paper uses
// nDiverse=25, topPop=200).
func (s *Store) DiversitySet(nDiverse, topPop int) []ItemID {
	pop := s.PopularSet(topPop)
	cp := make([]ItemID, len(pop))
	copy(cp, pop)
	sort.Slice(cp, func(i, j int) bool {
		vi, vj := s.ItemRatingVariance(cp[i]), s.ItemRatingVariance(cp[j])
		if vi != vj {
			return vi > vj
		}
		return cp[i] < cp[j]
	})
	if nDiverse > len(cp) {
		nDiverse = len(cp)
	}
	out := make([]ItemID, nDiverse)
	copy(out, cp[:nDiverse])
	return out
}

func (s *Store) mustFrozen(op string) {
	if !s.frozen {
		panic("dataset: " + op + " requires a frozen Store")
	}
}
