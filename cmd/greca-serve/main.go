// Command greca-serve exposes the recommendation engine over HTTP,
// coalescing concurrent single-group requests into RecommendBatch
// windows so the engine's shared candidate pools and prediction-row
// cache pay off under live traffic.
//
// Usage:
//
//	greca-serve [-addr :8080] [-window 5ms] [-maxbatch 64] [-maxpending 0]
//	            [-ratings ratings.dat] [-seed N] [-rowcache 1024]
//	            [-liststore 1024] [-shards 1] [-shards-config topology.json]
//	            [-remote-viewcache 0] [-workers N] [-recheck-workers N] [-snapshot dir]
//	            [-refreeze 0] [-pprof localhost:6060] [-v]
//
// -snapshot names a persistence directory: on boot the world is
// rebuilt from its snapshot when one matches the configuration (a
// warm restart that also restores the sorted-list views and CF
// neighborhoods, skipping the rebuild scans), ratings journaled since
// that snapshot are replayed from the per-shard write-ahead log, and
// every rating accepted by POST /v1/ratings is journaled before the
// request is acknowledged. On SIGTERM, after the listener drains, a
// fresh snapshot is written and the log truncated, so the next boot
// replays nothing. A snapshot from a different configuration (or a
// corrupted one) is discarded and the world boots cold — restarts are
// always safe, at worst slow. -refreeze folds pending ingested
// ratings into the frozen base at the given interval (0 folds only at
// snapshot time); folding never changes recommendations, it only
// bounds the delta overlay's lookup cost.
//
// -pprof binds net/http/pprof's debug routes to a separate listener on
// the given address (off by default; the service handler never carries
// them), for profiling live traffic:
//
//	go tool pprof http://localhost:6060/debug/pprof/allocs
//
// -shards partitions every per-user structure (rating arenas, CF
// caches, sorted-list sub-stores, affinity pair tables) N ways by
// hashing on UserID; recommendations are identical for every shard
// count. -rowcache, -liststore, and -shards must be positive — a
// zero or negative size is a usage error, not a silent clamp.
//
// -shards-config switches the shards into worker processes: it names
// a JSON topology file ({"shards": 4, "workers": [{"addr":
// "127.0.0.1:9101", "owns": [0, 2]}, ...]}) mapping every shard to
// exactly one greca-shard worker. The router then fetches each user's
// view scores and predictions from the worker owning its shard, fans
// every ingested rating out to all replicas, and reports the workers'
// cache counters under /v1/stats — serving byte-identical responses
// to the in-process world at the same shard count. Workers must be
// started first (same world flags: -seed, -ratings, -rowcache,
// -liststore, -shards) — the boot handshake refuses a worker built
// from a different world. A worker dying degrades only the shards it
// owns: reads touching them answer 503 ("shard_unavailable") with
// Retry-After, or 504 ("shard_timeout") on deadline, while other
// shards keep serving; rating ingest stays accepted (durable locally
// and on live replicas) with missed fanout deliveries counted in
// /v1/stats and the lagging worker fenced from serving.
//
// -remote-viewcache keeps up to N fetched member views warm on the
// router, fenced by the global apply sequence: each ingested rating's
// scoped-invalidation verdict (relayed in the workers' apply acks)
// drops or patches exactly the cached views it could have touched, so
// a warm hit serves bytes identical to a fresh fetch. Off by default
// (0); only meaningful with -shards-config.
//
// Endpoints (API v1; the unversioned routes are compatibility
// aliases):
//
//	POST /v1/recommend         {"group":[1,5,9],"k":10,"num_items":3900,
//	                            "consensus":"AP","model":"discrete","period":0,
//	                            "max_wait_ms":0,"epsilon":0}
//	                           epsilon > 0 enables bound-gap ε stopping:
//	                           the run ends once the threshold/kth-LB
//	                           gap sinks below ε, answering with the
//	                           ε-approximate top-k ("stop":"epsilon",
//	                           "partial":true).
//	POST /v1/recommend/batch   {"requests":[{...},{...}]}
//	POST /v1/ratings           {"user":1,"item":42,"value":4.5,"time":978300000}
//	                           ingests one rating into the live world:
//	                           applied to the delta overlay, journaled,
//	                           and every affected cache invalidated, so
//	                           the next recommendation reflects it
//	                           exactly as a cold rebuild would.
//	POST /v1/recommend/stream  same body (+ optional "progress_every": N);
//	                           answers Server-Sent Events: "progress"
//	                           frames with the partial top-k and its
//	                           converging bounds, then one "result"
//	                           frame. Disconnecting cancels the run
//	                           within one stopping-check interval.
//	GET  /v1/healthz           liveness
//	GET  /v1/stats             coalescer, batch, stream + cache counters,
//	                           with a per-shard cache breakdown whose
//	                           entries sum exactly to the aggregates,
//	                           plus ingest counters and (under
//	                           -snapshot) the boot's persistence report
//
// Client errors carry a machine-readable "code" ("empty_group",
// "duplicate_member", "period_out_of_range", "k_exceeds_candidates",
// "unknown_user", "unknown_item", "bad_rating", ...) beside the
// message; unknown methods on known routes answer 405 with an Allow
// header.
//
// On SIGINT/SIGTERM the listener stops accepting, in-flight requests
// finish, the coalescer drains its open window, and (under -snapshot)
// a final snapshot is written before exit.
//
// Examples:
//
//	greca-serve -addr :8080 -window 5ms -maxbatch 64
//	curl -s localhost:8080/v1/recommend -d '{"group":[1,5,9],"k":5,"num_items":200}'
//	curl -sN localhost:8080/v1/recommend/stream -d '{"group":[1,5,9],"k":5,"num_items":400}'
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // debug routes, exposed only via the -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/cf"
	"repro/internal/liststore"
	"repro/internal/remote"
	"repro/internal/server"
)

// requirePositive rejects non-positive size flags with a clean usage
// error (exit 2, like flag's own failures).
func requirePositive(name string, v int) {
	if v <= 0 {
		fmt.Fprintf(os.Stderr, "greca-serve: %s must be positive, got %d\n", name, v)
		flag.Usage()
		os.Exit(2)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("greca-serve: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		window     = flag.Duration("window", server.DefaultWindow, "coalescing latency budget")
		maxBatch   = flag.Int("maxbatch", server.DefaultMaxBatch, "coalescing batch bound")
		maxPending = flag.Int("maxpending", 0, "parked-caller bound; beyond it requests are shed with 429 (0 = unbounded)")
		ratings    = flag.String("ratings", "", "optional MovieLens-format ratings file (UserID::MovieID::Rating::Timestamp)")
		seed       = flag.Int64("seed", 1, "synthetic world seed")
		rowCache   = flag.Int("rowcache", cf.DefaultRowCacheCap, "prediction-row cache size (must be positive)")
		listStore  = flag.Int("liststore", liststore.DefaultMaxUsers, "sorted-list store user-view bound (must be positive)")
		shards     = flag.Int("shards", 1, "user-range shard count (must be positive; 1 = unsharded)")
		shardsConf = flag.String("shards-config", "", "JSON topology file mapping shards to greca-shard workers (empty = in-process shards)")
		viewCache  = flag.Int("remote-viewcache", 0, "router-side remote view cache capacity in views (0 = disabled; only meaningful with -shards-config)")
		workers    = flag.Int("workers", 0, "assembly workers per request (0 = GOMAXPROCS)")
		recheck    = flag.Int("recheck-workers", 0, "scoped-invalidation recheck pool size (0 = min(4, GOMAXPROCS); negative = serial)")
		snapshot   = flag.String("snapshot", "", "persistence directory: warm-restart snapshot + rating WAL (empty = no persistence)")
		refreeze   = flag.Duration("refreeze", 0, "fold pending ingested ratings every interval (0 = fold only at snapshot time)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		verbose    = flag.Bool("v", false, "print substrate statistics")
	)
	flag.Parse()

	// Size flags must be positive: a zero or negative cache, store, or
	// shard count is a configuration mistake, answered with usage
	// instead of a silently clamped default.
	requirePositive("-rowcache", *rowCache)
	requirePositive("-liststore", *listStore)
	requirePositive("-shards", *shards)

	cfg := repro.QuickConfig()
	cfg.Dataset.Seed = *seed
	cfg.Social.Seed = *seed + 1
	cfg.RowCacheSize = *rowCache
	cfg.ListStoreSize = *listStore
	cfg.Shards = *shards
	cfg.AssemblyWorkers = *workers
	cfg.RecheckWorkers = *recheck
	cfg.RemoteViewCache = *viewCache
	if *ratings != "" {
		f, err := os.Open(*ratings)
		if err != nil {
			log.Fatalf("opening ratings: %v", err)
		}
		defer f.Close()
		cfg.RatingsReader = f
	}

	log.Printf("building world (seed %d)...", *seed)
	world, open, err := repro.OpenWorld(cfg, *snapshot)
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	var openStats *repro.OpenStats
	if *snapshot != "" {
		openStats = &open
		if open.Warm {
			log.Printf("warm restart from %s: %d views, %d neighborhoods restored, %d ratings replayed",
				*snapshot, open.WarmViews, open.WarmNeighborhoods, open.ReplayedRatings)
		} else {
			log.Printf("cold start (no usable snapshot in %s): %d ratings replayed", *snapshot, open.ReplayedRatings)
		}
	}
	if *verbose {
		st := world.Ratings().Stats()
		fmt.Printf("world: %d users, %d items, %d ratings, %d participants, %d periods\n",
			st.Users, st.Items, st.Ratings, len(world.Participants()), world.Timeline().NumPeriods())
	}

	// Distributed mode: resolve the topology, handshake every worker
	// (config fingerprint + shard count must match this process), and
	// route the per-shard data plane through them. A worker that cannot
	// be reached or disagrees about the world is a boot failure — better
	// to refuse than to serve a world that silently diverges.
	if *shardsConf != "" {
		top, err := remote.LoadTopology(*shardsConf)
		if err != nil {
			log.Fatalf("loading shard topology: %v", err)
		}
		set, err := remote.NewShardSet(top, remote.ClientConfig{})
		if err != nil {
			log.Fatalf("building shard set: %v", err)
		}
		if err := world.AttachRemote(set); err != nil {
			log.Fatalf("attaching shard workers: %v", err)
		}
		log.Printf("distributed mode: %d shards on workers %v", top.Shards, set.Addrs())
	}

	srv := server.New(world, server.Config{Window: *window, MaxBatch: *maxBatch, MaxPending: *maxPending, OpenStats: openStats})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background fold: bound the delta overlay's lookup cost under
	// sustained ingest. ReFreeze is a no-op when nothing is pending.
	if *refreeze > 0 {
		go func() {
			tick := time.NewTicker(*refreeze)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n := world.ReFreeze(); n > 0 && *verbose {
						log.Printf("refreeze folded %d ratings", n)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (window %v, max batch %d, %d shards)", *addr, *window, *maxBatch, world.Shards())

	// Profiling stays off the service handler: the pprof routes live on
	// their own listener, bound only when -pprof names an address, so
	// the public surface never exposes them by accident. The profiling
	// listener is not part of the drain path — it dies with the process.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		log.Fatalf("listener: %v", err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight handlers (parked in
	// coalescer windows) finish, then flush the coalescer.
	log.Print("shutting down: draining in-flight windows...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	if *snapshot != "" {
		// Final snapshot after the listener has drained: no handler can
		// race an AddRating in, so the dump, the caches, and the log
		// reset describe the same world.
		if err := repro.SaveWorldSnapshot(world, *snapshot); err != nil {
			log.Printf("saving snapshot: %v", err)
		} else {
			log.Printf("snapshot saved to %s", *snapshot)
		}
		if err := world.ClosePersistence(); err != nil {
			log.Printf("closing rating log: %v", err)
		}
	}
	st := srv.Coalescer().Stats()
	log.Printf("served %d requests in %d windows (mean %.1f/window)",
		st.Requests, st.Windows, st.MeanWindowSize)
}
