package remote

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cf"
	"repro/internal/dataset"
)

// fakeBackend is a deterministic in-memory Backend: scores and
// predictions are pure functions of their inputs, so the loopback
// tests can assert exact values without a real world.
type fakeBackend struct {
	fp     uint64
	shards int
	owned  []int

	mu       sync.Mutex
	applied  []dataset.Rating
	applyErr error
	viewLen  int
	delay    time.Duration
	// depsFor, when set, supplies ViewScoresDeps' dependency metadata;
	// nil reports deps unknown (the conservative default).
	depsFor func(u dataset.UserID) (cf.RowDeps, bool)
}

func (b *fakeBackend) Fingerprint() uint64 { return b.fp }
func (b *fakeBackend) Shards() int         { return b.shards }
func (b *fakeBackend) Owned() []int        { return b.owned }

func (b *fakeBackend) ViewScores(u dataset.UserID) ([]float64, error) {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	n := b.viewLen
	if n == 0 {
		n = 10
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(u)*1000 + float64(i)
	}
	return scores, nil
}

func (b *fakeBackend) ViewScoresDeps(u dataset.UserID) ([]float64, cf.RowDeps, bool, error) {
	scores, err := b.ViewScores(u)
	if b.depsFor != nil {
		deps, known := b.depsFor(u)
		return scores, deps, known, err
	}
	return scores, cf.RowDeps{}, false, err
}

func (b *fakeBackend) PredictBatch(u dataset.UserID, items []dataset.ItemID) ([]float64, error) {
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = float64(u) + float64(it)/100
	}
	return out, nil
}

func (b *fakeBackend) Apply(r dataset.Rating) (ApplyAck, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.applyErr != nil {
		return ApplyAck{}, b.applyErr
	}
	b.applied = append(b.applied, r)
	return ApplyAck{Pending: len(b.applied), Applied: int64(len(b.applied))}, nil
}

func (b *fakeBackend) InvalidateUser(u dataset.UserID) bool { return u%2 == 0 }

func (b *fakeBackend) ShardStats() []ShardStats {
	out := make([]ShardStats, 0, len(b.owned))
	for _, sh := range b.owned {
		st := ShardStats{Shard: sh}
		st.RowCache.Hits = uint64(100 + sh)
		out = append(out, st)
	}
	return out
}

// startWorker serves b on a loopback listener, cleaned up with the
// test. Returns the worker address.
func startWorker(t *testing.T, b Backend, tune func(*Server)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(b)
	if tune != nil {
		tune(srv)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return lis.Addr().String()
}

// testClientConfig keeps loopback tests fast: short deadlines, short
// backoff, matching the fake world's identity.
func testClientConfig(b *fakeBackend) ClientConfig {
	return ClientConfig{
		CallTimeout: 500 * time.Millisecond,
		Backoff:     time.Millisecond,
		Fingerprint: b.fp,
		Shards:      b.shards,
	}
}

// allOwned builds a backend owning every shard of a 1-shard world, so
// any user routes to it.
func allOwned() *fakeBackend {
	return &fakeBackend{fp: 77, shards: 1, owned: []int{0}}
}

func TestClientViewScoresChunked(t *testing.T) {
	b := allOwned()
	b.viewLen = 10
	// Chunk size 3 forces 3 progress frames + 1 terminal frame — the
	// anytime contract on the wire, reassembled losslessly.
	addr := startWorker(t, b, func(s *Server) { s.ChunkScores = 3 })
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	got, err := c.ViewScores(5)
	if err != nil {
		t.Fatalf("ViewScores: %v", err)
	}
	want, _ := b.ViewScores(5)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scores = %v, want %v", got, want)
	}
	// A second call reuses the pooled connection (same answer).
	if again, err := c.ViewScores(5); err != nil || !reflect.DeepEqual(again, want) {
		t.Errorf("pooled call: %v, %v", again, err)
	}
}

// TestClientViewScoresMultiChunked: one batched call fetches several
// users' views — interleaved per-user chunk frames reassembled into
// request order — and relays each view's mean-fallback dependencies on
// its last chunk, which the router's view cache needs to patch warm
// views through scoped invalidation.
func TestClientViewScoresMultiChunked(t *testing.T) {
	b := allOwned()
	b.viewLen = 10
	b.depsFor = func(u dataset.UserID) (cf.RowDeps, bool) {
		if u == 2 {
			return cf.RowDeps{FallbackPos: []int32{1, 4}, UsedGlobal: true}, true
		}
		return cf.RowDeps{}, false
	}
	// Chunk size 3 forces several progress frames per user.
	addr := startWorker(t, b, func(s *Server) { s.ChunkScores = 3 })
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	users := []dataset.UserID{5, 2, 8}
	res, err := c.ViewScoresMulti(users)
	if err != nil {
		t.Fatalf("ViewScoresMulti: %v", err)
	}
	if len(res) != len(users) {
		t.Fatalf("got %d results for %d users", len(res), len(users))
	}
	for i, u := range users {
		want, _ := b.ViewScores(u)
		if !reflect.DeepEqual(res[i].Scores, want) {
			t.Errorf("user %d scores = %v, want %v", u, res[i].Scores, want)
		}
	}
	if !res[1].DepsKnown || !res[1].UsedGlobal || !reflect.DeepEqual(res[1].FallbackPos, []int32{1, 4}) {
		t.Errorf("deps relay = %+v, want known, global, fallback [1 4]", res[1])
	}
	if res[0].DepsKnown || res[2].DepsKnown {
		t.Error("deps reported known for users without metadata")
	}
	// The whole 3-member fetch cost exactly one wire call.
	if got := c.counters.ops[opViewMulti].Load(); got != 1 {
		t.Errorf("view_multi calls = %d, want 1", got)
	}
	if got := c.counters.ops[opView].Load(); got != 0 {
		t.Errorf("single view calls = %d, want 0", got)
	}
}

// TestClientPredictBatchMulti: one batched call fetches several users'
// predictions for a shared item list, one row per user.
func TestClientPredictBatchMulti(t *testing.T) {
	b := allOwned()
	addr := startWorker(t, b, nil)
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	users := []dataset.UserID{4, 1, 7}
	items := []dataset.ItemID{3, 9}
	rows, err := c.PredictBatchMulti(users, items)
	if err != nil {
		t.Fatalf("PredictBatchMulti: %v", err)
	}
	for i, u := range users {
		want, _ := b.PredictBatch(u, items)
		if !reflect.DeepEqual(rows[i], want) {
			t.Errorf("user %d row = %v, want %v", u, rows[i], want)
		}
	}
	if got := c.counters.ops[opPredictMulti].Load(); got != 1 {
		t.Errorf("predict_multi calls = %d, want 1", got)
	}
	if got := c.counters.ops[opPredict].Load(); got != 0 {
		t.Errorf("single predict calls = %d, want 0", got)
	}
}

// TestClientMultiWrongShard: a batched request naming even one user
// outside the worker's owned shards is refused whole — misrouting is
// loud on the batched path exactly as on the single-user one.
func TestClientMultiWrongShard(t *testing.T) {
	b := &fakeBackend{fp: 9, shards: 4, owned: []int{1}}
	addr := startWorker(t, b, nil)
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	m := hashMapFor(4)
	var inside, outside dataset.UserID
	for u, haveIn, haveOut := dataset.UserID(0), false, false; !haveIn || !haveOut; u++ {
		if m.Of(int64(u)) == 1 {
			if !haveIn {
				inside, haveIn = u, true
			}
		} else if !haveOut {
			outside, haveOut = u, true
		}
	}
	var ae *AppError
	if _, err := c.ViewScoresMulti([]dataset.UserID{inside, outside}); !errors.As(err, &ae) || ae.Code != codeWrongShard {
		t.Errorf("ViewScoresMulti: err = %v, want wrong_shard", err)
	}
	if _, err := c.PredictBatchMulti([]dataset.UserID{outside}, []dataset.ItemID{1}); !errors.As(err, &ae) || ae.Code != codeWrongShard {
		t.Errorf("PredictBatchMulti: err = %v, want wrong_shard", err)
	}
}

// TestShardSetMultiBatchesByWorker pins the RPC collapse the batched
// ops exist for: a group assembly's reads cost one wire call per owning
// worker, never one per member.
func TestShardSetMultiBatchesByWorker(t *testing.T) {
	set, _, _ := twoWorkerSet(t)
	m := hashMapFor(2)
	// 3 members on shard 0 and 2 on shard 1, interleaved in request
	// order, so the gather has to scatter results back across buckets.
	var users []dataset.UserID
	want0, want1 := 3, 2
	for u := dataset.UserID(0); want0 > 0 || want1 > 0; u++ {
		switch m.Of(int64(u)) {
		case 0:
			if want0 > 0 {
				users = append(users, u)
				want0--
			}
		case 1:
			if want1 > 0 {
				users = append(users, u)
				want1--
			}
		}
	}

	res, err := set.ViewScoresMulti(users)
	if err != nil {
		t.Fatalf("ViewScoresMulti: %v", err)
	}
	for i, u := range users {
		if len(res[i].Scores) != 10 || res[i].Scores[0] != float64(u)*1000 {
			t.Errorf("user %d (slot %d): scores %v", u, i, res[i].Scores[:2])
		}
	}
	items := []dataset.ItemID{1, 2}
	rows, err := set.PredictBatchMulti(users, items)
	if err != nil {
		t.Fatalf("PredictBatchMulti: %v", err)
	}
	for i, u := range users {
		if len(rows[i]) != 2 || rows[i][0] != float64(u)+0.01 {
			t.Errorf("user %d (slot %d): row %v", u, i, rows[i])
		}
	}

	st := set.TransportStats()
	if st.CallsByOp["view_multi"] != 2 || st.CallsByOp["predict_multi"] != 2 {
		t.Errorf("multi calls = %d/%d, want 2/2 (one per worker per scatter, 5 members)",
			st.CallsByOp["view_multi"], st.CallsByOp["predict_multi"])
	}
	if st.CallsByOp["view"] != 0 || st.CallsByOp["predict"] != 0 {
		t.Errorf("single calls = %d/%d, want 0/0", st.CallsByOp["view"], st.CallsByOp["predict"])
	}
	if st.BatchedCalls != 4 || st.SingleCalls != 0 {
		t.Errorf("batched/single = %d/%d, want 4/0", st.BatchedCalls, st.SingleCalls)
	}
}

func TestClientPredictApplyInvalidateStats(t *testing.T) {
	b := allOwned()
	addr := startWorker(t, b, nil)
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	items := []dataset.ItemID{3, 1, 9}
	vals, err := c.PredictBatch(2, items)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	want, _ := b.PredictBatch(2, items)
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("predictions = %v, want %v", vals, want)
	}

	ack, err := c.Apply(1, dataset.Rating{User: 1, Item: 2, Value: 3, Time: 4})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ack.Pending != 1 || ack.Applied != 1 {
		t.Errorf("ack = %+v, want pending/applied 1", ack)
	}
	if len(b.applied) != 1 || b.applied[0].Item != 2 {
		t.Errorf("backend applied %v", b.applied)
	}

	for _, u := range []dataset.UserID{2, 3} {
		dropped, err := c.InvalidateUser(u)
		if err != nil {
			t.Fatalf("InvalidateUser(%d): %v", u, err)
		}
		if dropped != (u%2 == 0) {
			t.Errorf("InvalidateUser(%d) = %v", u, dropped)
		}
	}

	ss, err := c.ShardStats()
	if err != nil {
		t.Fatalf("ShardStats: %v", err)
	}
	if len(ss) != 1 || ss[0].Shard != 0 || ss[0].RowCache.Hits != 100 {
		t.Errorf("stats = %+v", ss)
	}
}

// TestClientApplyAppErrors: the dataset rejections survive the hop as
// the same sentinels the in-process ingest surface produces.
func TestClientApplyAppErrors(t *testing.T) {
	b := allOwned()
	addr := startWorker(t, b, nil)
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	for _, want := range []error{dataset.ErrUnknownUser, dataset.ErrUnknownItem, dataset.ErrBadValue} {
		b.mu.Lock()
		b.applyErr = fmt.Errorf("refused: %w", want)
		b.mu.Unlock()
		// A refused apply never advances the worker's sequence, so every
		// attempt is the "next" apply at seq 1.
		if _, err := c.Apply(1, dataset.Rating{User: 1, Item: 1, Value: 1}); !errors.Is(err, want) {
			t.Errorf("err = %v, want %v", err, want)
		}
	}
}

// TestClientWrongShard: a worker refuses users outside its owned
// shards with the wrong_shard code — misrouting is loud, never silent.
func TestClientWrongShard(t *testing.T) {
	b := &fakeBackend{fp: 9, shards: 4, owned: []int{1}}
	addr := startWorker(t, b, nil)
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	m := hashMapFor(4)
	var outside dataset.UserID
	for u := dataset.UserID(0); ; u++ {
		if m.Of(int64(u)) != 1 {
			outside = u
			break
		}
	}
	var ae *AppError
	if _, err := c.ViewScores(outside); !errors.As(err, &ae) || ae.Code != codeWrongShard {
		t.Errorf("ViewScores: err = %v, want wrong_shard", err)
	}
	if _, err := c.PredictBatch(outside, []dataset.ItemID{1}); !errors.As(err, &ae) || ae.Code != codeWrongShard {
		t.Errorf("PredictBatch: err = %v, want wrong_shard", err)
	}
	if _, err := c.InvalidateUser(outside); !errors.As(err, &ae) || ae.Code != codeWrongShard {
		t.Errorf("InvalidateUser: err = %v, want wrong_shard", err)
	}
}

// TestHandshakeConfigMismatch: a router built from a different world
// (fingerprint or shard count) is refused at the handshake.
func TestHandshakeConfigMismatch(t *testing.T) {
	b := allOwned()
	addr := startWorker(t, b, nil)

	cfg := testClientConfig(b)
	cfg.Fingerprint = b.fp + 1
	c := NewClient(addr, cfg)
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("fingerprint skew: err = %v, want ErrConfigMismatch", err)
	}

	cfg = testClientConfig(b)
	cfg.Shards = b.shards + 1
	c2 := NewClient(addr, cfg)
	defer c2.Close()
	if err := c2.Ping(); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("shard-count skew: err = %v, want ErrConfigMismatch", err)
	}
}

// TestHandshakeOwnsMismatch: a worker deployed with the wrong -owns
// (its helloAck disagrees with the topology's assignment) is refused
// at the boot handshake — not discovered request by request as
// wrong_shard errors.
func TestHandshakeOwnsMismatch(t *testing.T) {
	b := &fakeBackend{fp: 5, shards: 2, owned: []int{0}}
	addr := startWorker(t, b, nil)
	top, err := ParseTopology([]byte(fmt.Sprintf(
		`{"shards": 2, "workers": [{"addr": %q, "owns": [0, 1]}]}`, addr)))
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewShardSet(top, ClientConfig{CallTimeout: 500 * time.Millisecond, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(set.Close)
	if err := set.Handshake(5, 2); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("Handshake: err = %v, want ErrConfigMismatch", err)
	}
}

// TestClientViewTotalBounded: a view chunk claiming a total past the
// configured bound is a protocol violation, rejected before the
// gather buffer is allocated — a buggy or hostile worker cannot make
// the router allocate gigabytes off one CRC-valid frame.
func TestClientViewTotalBounded(t *testing.T) {
	addr := rawWorker(t, func(conn net.Conn, req frame) {
		chunk := encodeViewChunk(viewChunk{Total: 1_000_000, Offset: 0, Scores: []float64{1}})
		_ = writeFrame(conn, frame{kind: kindProgress, op: req.op, seq: req.seq, payload: chunk})
		_ = writeFrame(conn, frame{kind: kindResult, op: req.op, seq: req.seq, payload: chunk})
	})
	c := NewClient(addr, ClientConfig{
		CallTimeout:   500 * time.Millisecond,
		Backoff:       time.Millisecond,
		Shards:        1,
		MaxViewScores: 100,
	})
	defer c.Close()
	if _, err := c.ViewScores(1); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized view claim: err = %v, want ErrProtocol", err)
	}
}

// TestClientDeadWorker: nothing listening → ErrShardUnavailable after
// the bounded retries.
func TestClientDeadWorker(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // the port is now dead

	b := allOwned()
	cfg := testClientConfig(b)
	cfg.DialTimeout = 200 * time.Millisecond
	c := NewClient(addr, cfg)
	defer c.Close()
	if _, err := c.ViewScores(1); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("err = %v, want ErrShardUnavailable", err)
	}
}

// TestClientTimeout: a worker that stalls past the call deadline while
// staying connected → ErrShardTimeout, not unavailable.
func TestClientTimeout(t *testing.T) {
	b := allOwned()
	b.delay = 300 * time.Millisecond
	addr := startWorker(t, b, nil)
	cfg := testClientConfig(b)
	cfg.CallTimeout = 50 * time.Millisecond
	c := NewClient(addr, cfg)
	defer c.Close()
	if _, err := c.ViewScores(1); !errors.Is(err, ErrShardTimeout) {
		t.Errorf("err = %v, want ErrShardTimeout", err)
	}
}

// rawWorker accepts connections, answers the handshake, then hands the
// connection to serve for scripted misbehavior.
func rawWorker(t *testing.T, serve func(conn net.Conn, req frame)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				f, err := readFrame(conn)
				if err != nil || f.kind != kindHello {
					return
				}
				if err := writeFrame(conn, frame{kind: kindHelloAck, seq: f.seq, payload: encodeHelloAck([]int{0}, frameVersionMin)}); err != nil {
					return
				}
				req, err := readFrame(conn)
				if err != nil {
					return
				}
				serve(conn, req)
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// TestClientMidStreamDisconnect: a worker that dies between progress
// frames (some chunks delivered, terminal frame never sent) surfaces
// as ErrShardUnavailable — a half-gathered view is never returned.
func TestClientMidStreamDisconnect(t *testing.T) {
	addr := rawWorker(t, func(conn net.Conn, req frame) {
		chunk := encodeViewChunk(viewChunk{Total: 100, Offset: 0, Scores: []float64{1, 2, 3}})
		_ = writeFrame(conn, frame{kind: kindProgress, op: req.op, seq: req.seq, payload: chunk})
		// Die before the terminal frame: the client sees a torn stream.
	})
	c := NewClient(addr, ClientConfig{CallTimeout: 500 * time.Millisecond, Backoff: time.Millisecond, Shards: 1})
	defer c.Close()
	if _, err := c.ViewScores(1); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("err = %v, want ErrShardUnavailable", err)
	}
}

// TestClientSeqMismatch: a response carrying the wrong sequence number
// is a protocol violation — never matched to the wrong request.
func TestClientSeqMismatch(t *testing.T) {
	addr := rawWorker(t, func(conn net.Conn, req frame) {
		_ = writeFrame(conn, frame{kind: kindResult, op: req.op, seq: req.seq + 99, payload: encodeBool(true)})
	})
	c := NewClient(addr, ClientConfig{CallTimeout: 500 * time.Millisecond, Backoff: time.Millisecond, Shards: 1})
	defer c.Close()
	if _, err := c.InvalidateUser(1); !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}

// TestClientRetriesIdempotentReads: a connection severed before any
// response retries on a fresh dial and succeeds — reads are
// idempotent. The first connection's request is dropped on the floor.
func TestClientRetriesIdempotentReads(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	addr := rawWorker(t, func(conn net.Conn, req frame) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			return // die without answering; deferred Close tears the conn
		}
		_ = writeFrame(conn, frame{kind: kindResult, op: req.op, seq: req.seq, payload: encodeBool(true)})
	})
	c := NewClient(addr, ClientConfig{CallTimeout: 500 * time.Millisecond, Backoff: time.Millisecond, Shards: 1})
	defer c.Close()
	dropped, err := c.InvalidateUser(1)
	if err != nil || !dropped {
		t.Fatalf("retried read = %v, %v; want true, nil", dropped, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Errorf("worker saw %d requests, want 2 (one dropped, one retried)", calls)
	}
}

// TestClientApplyRetriesSameSeq: an apply whose connection is severed
// before the ack is redelivered on a fresh dial, byte-identical —
// same sequence, same rating — so the worker's dedup can make the
// redelivery idempotent.
func TestClientApplyRetriesSameSeq(t *testing.T) {
	var mu sync.Mutex
	var payloads [][]byte
	addr := rawWorker(t, func(conn net.Conn, req frame) {
		mu.Lock()
		payloads = append(payloads, append([]byte(nil), req.payload...))
		first := len(payloads) == 1
		mu.Unlock()
		if first {
			return // die without answering; deferred Close tears the conn
		}
		_ = writeFrame(conn, frame{kind: kindResult, op: req.op, seq: req.seq, payload: encodeApplyAck(ApplyAck{Pending: 1})})
	})
	c := NewClient(addr, ClientConfig{CallTimeout: 500 * time.Millisecond, Backoff: time.Millisecond, Shards: 1})
	defer c.Close()
	ack, err := c.Apply(42, dataset.Rating{User: 1, Item: 1, Value: 1})
	if err != nil || ack.Pending != 1 {
		t.Fatalf("retried apply = %+v, %v; want pending 1, nil", ack, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(payloads) != 2 {
		t.Fatalf("worker saw %d apply deliveries, want 2 (one dropped, one redelivered)", len(payloads))
	}
	q0, err0 := decodeApplyReq(payloads[0])
	q1, err1 := decodeApplyReq(payloads[1])
	if err0 != nil || err1 != nil || q0 != q1 || q0.Seq != 42 {
		t.Errorf("deliveries diverge: %+v (%v) vs %+v (%v)", q0, err0, q1, err1)
	}
}

// TestServerApplyDedupAndGap pins the worker-side sequence discipline:
// a redelivered apply acks without a second ingest, and a sequence
// hole answers replica_gap instead of ingesting past a missed write.
func TestServerApplyDedupAndGap(t *testing.T) {
	b := allOwned()
	addr := startWorker(t, b, nil)
	c := NewClient(addr, testClientConfig(b))
	defer c.Close()

	r1 := dataset.Rating{User: 1, Item: 2, Value: 3, Time: 4}
	ack, err := c.Apply(1, r1)
	if err != nil {
		t.Fatalf("Apply(1): %v", err)
	}
	// Redelivery of seq 1: same ack, no second ingest.
	again, err := c.Apply(1, r1)
	if err != nil || !reflect.DeepEqual(again, ack) {
		t.Fatalf("redelivered Apply(1) = %+v, %v; want %+v, nil", again, err, ack)
	}
	b.mu.Lock()
	n := len(b.applied)
	b.mu.Unlock()
	if n != 1 {
		t.Errorf("backend ingested %d ratings, want 1 (dedup)", n)
	}
	// Same seq, different rating: not a redelivery — a divergence.
	if _, err := c.Apply(1, dataset.Rating{User: 1, Item: 9, Value: 1}); !errors.Is(err, ErrReplicaGap) {
		t.Errorf("conflicting seq 1: err = %v, want ErrReplicaGap", err)
	}
	// Skipping seq 2 entirely: the replica missed a write.
	if _, err := c.Apply(3, dataset.Rating{User: 1, Item: 3, Value: 2}); !errors.Is(err, ErrReplicaGap) {
		t.Errorf("gap: err = %v, want ErrReplicaGap", err)
	}
	// The contiguous next sequence still applies.
	if _, err := c.Apply(2, dataset.Rating{User: 1, Item: 3, Value: 2}); err != nil {
		t.Errorf("Apply(2): %v", err)
	}
}

func TestParseTopology(t *testing.T) {
	good := []byte(`{"shards": 4, "workers": [
		{"addr": "a:1", "owns": [0, 2]},
		{"addr": "b:1", "owns": [1, 3]}]}`)
	top, err := ParseTopology(good)
	if err != nil {
		t.Fatalf("good topology: %v", err)
	}
	if top.Shards != 4 || len(top.Workers) != 2 {
		t.Errorf("topology = %+v", top)
	}

	bad := map[string][]byte{
		"not json":      []byte(`{`),
		"unknown field": []byte(`{"shards": 1, "workers": [{"addr": "a:1", "owns": [0]}], "extra": 1}`),
		"zero shards":   []byte(`{"shards": 0, "workers": [{"addr": "a:1", "owns": [0]}]}`),
		"no workers":    []byte(`{"shards": 1, "workers": []}`),
		"empty addr":    []byte(`{"shards": 1, "workers": [{"addr": "", "owns": [0]}]}`),
		"owns nothing":  []byte(`{"shards": 2, "workers": [{"addr": "a:1", "owns": [0]}, {"addr": "b:1", "owns": []}]}`),
		"out of range":  []byte(`{"shards": 2, "workers": [{"addr": "a:1", "owns": [0, 2]}]}`),
		"double owner":  []byte(`{"shards": 2, "workers": [{"addr": "a:1", "owns": [0, 1]}, {"addr": "b:1", "owns": [1]}]}`),
		"orphan shard":  []byte(`{"shards": 3, "workers": [{"addr": "a:1", "owns": [0, 1]}]}`),
	}
	for name, data := range bad {
		if _, err := ParseTopology(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// twoWorkerSet builds a 2-shard world split across two loopback
// workers and a handshaken ShardSet over them.
func twoWorkerSet(t *testing.T) (*ShardSet, *fakeBackend, *fakeBackend) {
	t.Helper()
	b0 := &fakeBackend{fp: 5, shards: 2, owned: []int{0}}
	b1 := &fakeBackend{fp: 5, shards: 2, owned: []int{1}}
	a0 := startWorker(t, b0, nil)
	a1 := startWorker(t, b1, nil)
	top, err := ParseTopology([]byte(fmt.Sprintf(
		`{"shards": 2, "workers": [{"addr": %q, "owns": [0]}, {"addr": %q, "owns": [1]}]}`, a0, a1)))
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewShardSet(top, ClientConfig{CallTimeout: 500 * time.Millisecond, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(set.Close)
	if err := set.Handshake(5, 2); err != nil {
		t.Fatalf("Handshake: %v", err)
	}
	return set, b0, b1
}

// userOnShard finds a user routed to shard sh under the canonical
// 2-way map.
func userOnShard(sh int) dataset.UserID {
	m := hashMapFor(2)
	for u := dataset.UserID(0); ; u++ {
		if m.Of(int64(u)) == sh {
			return u
		}
	}
}

// TestShardSetRoutesByShard: each user's data-plane reads land on the
// worker owning its shard.
func TestShardSetRoutesByShard(t *testing.T) {
	set, _, _ := twoWorkerSet(t)
	for sh := 0; sh < 2; sh++ {
		u := userOnShard(sh)
		scores, err := set.ViewScores(u)
		if err != nil {
			t.Fatalf("shard %d: ViewScores(%d): %v", sh, u, err)
		}
		if len(scores) != 10 || scores[0] != float64(u)*1000 {
			t.Errorf("shard %d: scores %v", sh, scores[:2])
		}
		if _, err := set.PredictBatch(u, []dataset.ItemID{1}); err != nil {
			t.Errorf("shard %d: PredictBatch: %v", sh, err)
		}
	}
}

// TestShardSetApplyFansOutToAllWorkers: every replica ingests every
// rating (neighborhoods cross shards); the owner's ack is returned.
func TestShardSetApplyFansOutToAllWorkers(t *testing.T) {
	set, b0, b1 := twoWorkerSet(t)
	u := userOnShard(1)
	ack, _, err := set.Apply(1, dataset.Rating{User: u, Item: 7, Value: 4, Time: 1})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ack.Pending != 1 {
		t.Errorf("ack = %+v", ack)
	}
	for i, b := range []*fakeBackend{b0, b1} {
		b.mu.Lock()
		n := len(b.applied)
		b.mu.Unlock()
		if n != 1 {
			t.Errorf("worker %d ingested %d ratings, want 1", i, n)
		}
	}
	if set.FanoutErrors() != 0 {
		t.Errorf("fanout errors = %d", set.FanoutErrors())
	}
}

// TestShardSetStatsByShard gathers both workers' counters into shard
// order with every entry live.
func TestShardSetStatsByShard(t *testing.T) {
	set, _, _ := twoWorkerSet(t)
	ss, ok, err := set.StatsByShard()
	if err != nil {
		t.Fatalf("StatsByShard: %v", err)
	}
	for sh := 0; sh < 2; sh++ {
		if !ok[sh] {
			t.Errorf("shard %d not live", sh)
		}
		if ss[sh].Shard != sh || ss[sh].RowCache.Hits != uint64(100+sh) {
			t.Errorf("shard %d stats = %+v", sh, ss[sh])
		}
	}
}

// killWorker severs a worker client's pool and redirects it to a dead
// port, simulating a SIGKILLed process under static membership.
func killWorker(t *testing.T, set *ShardSet, sh int) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := lis.Addr().String()
	lis.Close()
	cl := set.Owner(sh)
	cl.Close()
	cl.mu.Lock()
	cl.closed = false
	cl.addr = dead
	cl.cfg.DialTimeout = 100 * time.Millisecond
	cl.mu.Unlock()
}

// TestShardSetDeadWorkerDegradesOnlyItsShards: after one worker dies,
// its shards answer ErrShardUnavailable while the other keeps serving;
// stats keep zero-valued placeholder entries; an ingest for a user the
// dead worker owns fails, one owned by the live worker proceeds with a
// counted fanout miss.
func TestShardSetDeadWorkerDegradesOnlyItsShards(t *testing.T) {
	set, _, b1 := twoWorkerSet(t)
	killWorker(t, set, 0)

	if _, err := set.ViewScores(userOnShard(0)); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("dead shard read: err = %v, want ErrShardUnavailable", err)
	}
	if _, err := set.ViewScores(userOnShard(1)); err != nil {
		t.Errorf("live shard read: %v", err)
	}

	ss, ok, err := set.StatsByShard()
	if err == nil {
		t.Error("StatsByShard reported no error with a dead worker")
	}
	if ok[0] || !ok[1] {
		t.Errorf("liveness = %v, want [false true]", ok)
	}
	if ss[0].Shard != 0 || ss[0].RowCache.Hits != 0 {
		t.Errorf("dead shard entry = %+v, want zero-valued placeholder", ss[0])
	}

	if _, _, err := set.Apply(1, dataset.Rating{User: userOnShard(0), Item: 1, Value: 1}); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("ingest for dead owner: err = %v, want ErrShardUnavailable", err)
	}
	if _, _, err := set.Apply(2, dataset.Rating{User: userOnShard(1), Item: 1, Value: 1, Time: 1}); err != nil {
		t.Errorf("ingest for live owner: %v", err)
	}
	if set.FanoutErrors() == 0 {
		t.Error("fanout miss not counted")
	}
	// The dead worker missed a write: it must be fenced, so even if
	// the process came back on that address it could not serve a
	// diverged replica.
	if fenced := set.Fenced(); len(fenced) != 1 {
		t.Errorf("fenced workers = %v, want exactly the dead one", fenced)
	}
	// The live replica ingested both ratings: fanout delivers to every
	// reachable worker even when the owner's ack fails (replicas must
	// not diverge from each other; the dead worker is behind either
	// way and never serves again under static membership).
	b1.mu.Lock()
	n := len(b1.applied)
	b1.mu.Unlock()
	if n != 2 {
		t.Errorf("live worker ingested %d ratings, want 2", n)
	}
}

// TestShardSetFencesReplicaThatMissedWrite is the divergence guard
// from the other direction: the worker process is alive and serving
// reads, but its Apply fails (full disk, refused ingest). The set
// must fence it — a replica that missed a write can no longer serve
// byte-identical state — so its shards degrade to ErrShardUnavailable
// instead of silently serving stale bytes.
func TestShardSetFencesReplicaThatMissedWrite(t *testing.T) {
	set, b0, b1 := twoWorkerSet(t)
	// Reads on shard 0 work before the miss.
	if _, err := set.ViewScores(userOnShard(0)); err != nil {
		t.Fatalf("pre-miss read: %v", err)
	}
	// Worker 0's replica refuses the ingest; the owner (worker 1) acks.
	b0.mu.Lock()
	b0.applyErr = errors.New("disk full")
	b0.mu.Unlock()
	if _, _, err := set.Apply(1, dataset.Rating{User: userOnShard(1), Item: 1, Value: 2, Time: 1}); err != nil {
		t.Fatalf("Apply with live owner: %v", err)
	}
	if fenced := set.Fenced(); len(fenced) != 1 {
		t.Fatalf("fenced = %v, want the worker that missed the write", fenced)
	}
	// The alive-but-behind worker no longer serves: its shard reads
	// fast-fail, the live shard keeps serving.
	if _, err := set.ViewScores(userOnShard(0)); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("fenced shard read: err = %v, want ErrShardUnavailable", err)
	}
	if _, err := set.ViewScores(userOnShard(1)); err != nil {
		t.Errorf("live shard read: %v", err)
	}
	// Later applies skip the fenced replica entirely.
	b0.mu.Lock()
	b0.applyErr = nil
	b0.mu.Unlock()
	if _, _, err := set.Apply(2, dataset.Rating{User: userOnShard(1), Item: 2, Value: 3, Time: 2}); err != nil {
		t.Fatalf("post-fence apply: %v", err)
	}
	b0.mu.Lock()
	n0 := len(b0.applied)
	b0.mu.Unlock()
	b1.mu.Lock()
	n1 := len(b1.applied)
	b1.mu.Unlock()
	if n0 != 0 || n1 != 2 {
		t.Errorf("applied counts = %d/%d, want 0 (fenced, skipped) / 2", n0, n1)
	}
}

// TestShardSetConcurrentReads exercises the per-client connection pool
// under parallel scatter traffic; run with -race.
func TestShardSetConcurrentReads(t *testing.T) {
	set, _, _ := twoWorkerSet(t)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				u := userOnShard((g + i) % 2)
				if _, err := set.ViewScores(u); err != nil {
					errc <- err
					return
				}
				if _, err := set.PredictBatch(u, []dataset.ItemID{1, 2}); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent read: %v", err)
	}
}
