package cf

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Similarity selects the user-user similarity measure. The paper uses
// cosine over the full rating vectors; Pearson (mean-centered over
// co-rated items) is the standard alternative and is provided for
// completeness and ablation.
type Similarity int

const (
	// CosineSim is cos(vec(u), vec(u')) — the paper's §4 choice.
	CosineSim Similarity = iota
	// PearsonSim is the Pearson correlation over co-rated items.
	PearsonSim
)

// String names the measure.
func (s Similarity) String() string {
	switch s {
	case CosineSim:
		return "cosine"
	case PearsonSim:
		return "pearson"
	default:
		return fmt.Sprintf("Similarity(%d)", int(s))
	}
}

// Pearson returns the Pearson correlation of the two users' ratings
// over their co-rated items, in [-1, 1]. Fewer than two co-rated
// items, or zero variance on either side, yields 0.
func (p *Predictor) Pearson(u, v dataset.UserID) float64 {
	if u == v {
		return 1
	}
	ru, rv := p.store.ByUser(u), p.store.ByUser(v)
	var xs, ys []float64
	i, j := 0, 0
	for i < len(ru) && j < len(rv) {
		switch {
		case ru[i].Item < rv[j].Item:
			i++
		case ru[i].Item > rv[j].Item:
			j++
		default:
			xs = append(xs, ru[i].Value)
			ys = append(ys, rv[j].Value)
			i++
			j++
		}
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	var mx, my float64
	for k := 0; k < n; k++ {
		mx += xs[k]
		my += ys[k]
	}
	mx /= float64(n)
	my /= float64(n)
	var cov, vx, vy float64
	for k := 0; k < n; k++ {
		dx, dy := xs[k]-mx, ys[k]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Sim dispatches to the configured similarity measure.
func (p *Predictor) Sim(measure Similarity, u, v dataset.UserID) float64 {
	switch measure {
	case PearsonSim:
		return p.Pearson(u, v)
	default:
		return p.Cosine(u, v)
	}
}
