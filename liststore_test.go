package repro

import (
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/dataset"
)

// TestRecommendListStoreDifferential is the facade-level acceptance
// test of the sorted-list store: a world with the store enabled must
// produce byte-identical recommendations to one with it disabled,
// across consensus functions, time models, group sizes, and candidate
// shapes — while actually serving from views.
func TestRecommendListStoreDifferential(t *testing.T) {
	cfg := tinyConfig()
	served, err := NewWorld(cfg)
	if err != nil {
		t.Fatalf("NewWorld(served): %v", err)
	}
	if served.ListStore() == nil {
		t.Fatal("default config did not enable the list store")
	}
	cfg.ListStoreSize = -1
	dense, err := NewWorld(cfg)
	if err != nil {
		t.Fatalf("NewWorld(dense): %v", err)
	}
	if dense.ListStore() != nil {
		t.Fatal("negative ListStoreSize did not disable the store")
	}

	participants := served.Participants()
	groups := [][]dataset.UserID{
		participants[:1], // single member: no pairs
		participants[2:4],
		participants[5:9],
	}
	opts := []Options{
		{K: 5, NumItems: 120},
		{K: 3, NumItems: 80, Consensus: consensus.PD(0.8)},
		{K: 4, NumItems: 100, TimeModel: TimeAgnostic},
		{K: 2, NumItems: 60, TimeModel: AffinityAgnostic, Consensus: consensus.MO()},
	}
	for gi, group := range groups {
		for oi, opt := range opts {
			want, err1 := dense.Recommend(group, opt)
			got, err2 := served.Recommend(group, opt)
			if err1 != nil || err2 != nil {
				t.Fatalf("group %d opt %d: errors %v / %v", gi, oi, err1, err2)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("group %d opt %d: store-served result diverges\ndense:  %+v\nserved: %+v", gi, oi, want, got)
			}
		}
	}
	st := served.ListStore().Stats()
	if st.ViewBuilds == 0 {
		t.Errorf("differential traffic never built a view: %+v", st)
	}
	if st.ViewHits == 0 {
		t.Errorf("differential traffic never hit a view: %+v", st)
	}

	// Caller-fixed candidate slices (not popularity-derived) must agree
	// too, whichever path serves them.
	items := served.CandidateItems(groups[1], 90)
	custom := append([]dataset.ItemID(nil), items[:50]...)
	opt := Options{K: 3, Items: custom}
	want, err1 := dense.Recommend(groups[1], opt)
	got, err2 := served.Recommend(groups[1], opt)
	if err1 != nil || err2 != nil {
		t.Fatalf("custom items: errors %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("custom items diverge:\ndense:  %+v\nserved: %+v", want, got)
	}
}

// TestInvalidateUserViews pins the store lifecycle the World owns:
// invalidation drops the view, the next request rebuilds it, and the
// recommendation is unchanged (the substrate is immutable, so a
// rebuild must reproduce the same view).
func TestInvalidateUserViews(t *testing.T) {
	w := tinyWorld(t)
	group := w.Participants()[:2]
	opt := Options{K: 3, NumItems: 80}

	before, err := w.Recommend(group, opt)
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	// Prime a cached prediction row for the user (view-served requests
	// bypass the row cache, so put one there directly) and assert
	// invalidation drops it along with the view — a rebuild reading a
	// stale cached row would reproduce pre-ingest preferences.
	items := w.CandidateItems(group, 40)
	w.Source().PredictBatch(group[0], items)
	rowsBefore := w.CacheStats().RowCache.Size
	if w.InvalidateUserViews(group[0]) != true {
		t.Error("invalidating a materialized view reported no drop")
	}
	if rowsAfter := w.CacheStats().RowCache.Size; rowsAfter != rowsBefore-1 {
		t.Errorf("row cache size %d -> %d: invalidation should drop the user's cached row", rowsBefore, rowsAfter)
	}
	if w.InvalidateUserViews(group[0]) != false {
		t.Error("double invalidation reported a drop")
	}
	builds := w.ListStore().Stats().ViewBuilds
	after, err := w.Recommend(group, opt)
	if err != nil {
		t.Fatalf("recommend after invalidation: %v", err)
	}
	st := w.ListStore().Stats()
	if st.ViewBuilds != builds+1 || st.Rebuilds == 0 {
		t.Errorf("invalidated view was not rebuilt: %+v", st)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("rebuild changed the recommendation:\nbefore: %+v\nafter:  %+v", before, after)
	}
}

// TestRecommendBatchSharesViews pins the sweep-sharing property: the
// groups of one batch reuse both the memoized candidate mapping and
// each member's materialized view.
func TestRecommendBatchSharesViews(t *testing.T) {
	w := tinyWorld(t)
	p := w.Participants()
	opt := Options{K: 3, NumItems: 80}
	reqs := []Request{
		{Group: []dataset.UserID{p[0], p[1]}, Options: opt},
		{Group: []dataset.UserID{p[1], p[2]}, Options: opt}, // p[1] shared
		{Group: []dataset.UserID{p[0], p[1]}, Options: opt}, // identical request: deduplicated, no second run
		{Group: []dataset.UserID{p[0], p[1]}, Options: Options{K: 2, NumItems: 80}}, // same pool, distinct run
	}
	shared := w.MuxStats().Shared
	for i, res := range w.RecommendBatch(reqs) {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
	}
	st := w.ListStore().Stats()
	// Three distinct members → exactly three builds; the shared member
	// and the same-pool K=2 request produce hits, not rebuilds.
	if st.ViewBuilds != 3 {
		t.Errorf("view builds = %d, want 3 (one per distinct member): %+v", st.ViewBuilds, st)
	}
	if st.ViewHits == 0 {
		t.Errorf("no view sharing across the batch: %+v", st)
	}
	if st.MapHits == 0 {
		t.Errorf("no mapping sharing across the batch: %+v", st)
	}
	// The fully identical request never ran: it reused the first
	// request's result through the batch singleflight.
	if got := w.MuxStats().Shared - shared; got != 1 {
		t.Errorf("batch dedup shared = %d, want 1: %+v", got, w.MuxStats())
	}
}
