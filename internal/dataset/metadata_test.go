package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func genMeta(t *testing.T) (*Synth, *Metadata) {
	t.Helper()
	cfg := DefaultSynthConfig()
	cfg.Users = 40
	cfg.Items = 80
	cfg.TargetRatings = 800
	sy, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sy, GenerateMetadata(sy, 5)
}

func TestGenerateMetadataCoversWorld(t *testing.T) {
	sy, md := genMeta(t)
	if md.NumMovies() != sy.Config.Items {
		t.Errorf("movies = %d, want %d", md.NumMovies(), sy.Config.Items)
	}
	if md.NumUsers() != sy.Config.Users {
		t.Errorf("users = %d, want %d", md.NumUsers(), sy.Config.Users)
	}
	m, ok := md.Movie(0)
	if !ok || m.Title == "" || len(m.Genres) == 0 {
		t.Errorf("movie 0 incomplete: %+v", m)
	}
	// Primary genre label must reflect the latent genre.
	if want := MovieLensGenres[sy.ItemGenre[0]]; m.Genres[0] != want {
		t.Errorf("movie 0 genre %q, want %q", m.Genres[0], want)
	}
	u, ok := md.User(0)
	if !ok || (u.Gender != GenderFemale && u.Gender != GenderMale) {
		t.Errorf("user 0 incomplete: %+v", u)
	}
	validAge := false
	for _, a := range MovieLensAgeBrackets {
		if u.Age == a {
			validAge = true
		}
	}
	if !validAge {
		t.Errorf("age %d not a MovieLens bracket", u.Age)
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	_, md := genMeta(t)
	var movies, users bytes.Buffer
	if err := md.WriteMovies(&movies); err != nil {
		t.Fatal(err)
	}
	if err := md.WriteUsers(&users); err != nil {
		t.Fatal(err)
	}
	loaded := NewMetadata()
	if err := loaded.ReadMovies(&movies); err != nil {
		t.Fatalf("ReadMovies: %v", err)
	}
	if err := loaded.ReadUsers(&users); err != nil {
		t.Fatalf("ReadUsers: %v", err)
	}
	if loaded.NumMovies() != md.NumMovies() || loaded.NumUsers() != md.NumUsers() {
		t.Fatalf("round trip lost rows: %d/%d movies, %d/%d users",
			loaded.NumMovies(), md.NumMovies(), loaded.NumUsers(), md.NumUsers())
	}
	for id := 0; id < md.NumMovies(); id++ {
		a, _ := md.Movie(ItemID(id))
		b, ok := loaded.Movie(ItemID(id))
		if !ok || a.Title != b.Title || strings.Join(a.Genres, "|") != strings.Join(b.Genres, "|") {
			t.Fatalf("movie %d mismatch: %+v vs %+v", id, a, b)
		}
	}
}

func TestReadMoviesRejectsMalformed(t *testing.T) {
	for _, line := range []string{"1::only-two", "x::title::Drama"} {
		md := NewMetadata()
		if err := md.ReadMovies(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// Titles containing "::"-free colons must parse.
	md := NewMetadata()
	if err := md.ReadMovies(strings.NewReader("7::Movie: The Sequel (1999)::Drama|Comedy\n")); err != nil {
		t.Fatalf("rejected valid movie line: %v", err)
	}
	m, _ := md.Movie(7)
	if m.Title != "Movie: The Sequel (1999)" || len(m.Genres) != 2 {
		t.Errorf("parsed movie wrong: %+v", m)
	}
}

func TestReadUsersRejectsMalformed(t *testing.T) {
	bad := []string{
		"1::F::25",            // short
		"x::F::25::3::12345",  // bad id
		"1::Q::25::3::12345",  // bad gender
		"1::F::xx::3::12345",  // bad age
		"1::F::25::xx::12345", // bad occupation
	}
	for _, line := range bad {
		md := NewMetadata()
		if err := md.ReadUsers(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestDemographicAffinity(t *testing.T) {
	md := NewMetadata()
	md.AddUser(User{ID: 1, Gender: GenderFemale, Age: 25, Occupation: 3})
	md.AddUser(User{ID: 2, Gender: GenderFemale, Age: 25, Occupation: 7})
	md.AddUser(User{ID: 3, Gender: GenderMale, Age: 50, Occupation: 3})
	if got := md.DemographicAffinity(1, 2); got != 2 {
		t.Errorf("aff(1,2) = %v, want 2 (gender+age)", got)
	}
	if got := md.DemographicAffinity(1, 3); got != 1 {
		t.Errorf("aff(1,3) = %v, want 1 (occupation)", got)
	}
	if got := md.DemographicAffinity(1, 99); got != 0 {
		t.Errorf("aff with missing user = %v, want 0", got)
	}
	if !md.SameAgeBracket(1, 2) || md.SameAgeBracket(1, 3) {
		t.Errorf("SameAgeBracket wrong")
	}
	if md.Title(12345) != "Movie 12345" {
		t.Errorf("placeholder title wrong: %q", md.Title(12345))
	}
}
