package repro

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/affinity"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dataset"
)

// TimeModel selects how pairwise affinity is evaluated (§2.1 and the
// quality-study baselines of §4.1.4).
type TimeModel int

const (
	// Discrete is the paper's default: affD = affS + mean periodic
	// drift.
	Discrete TimeModel = iota
	// Continuous: affC = affS · e^{rate·Σdrift}.
	Continuous
	// TimeAgnostic uses the static component only (Figure 1C
	// baseline).
	TimeAgnostic
	// AffinityAgnostic ignores affinity entirely (Figure 1B baseline);
	// consensus aggregates absolute preferences alone.
	AffinityAgnostic
)

// ParseTimeModel resolves a time-model name as the CLIs and the HTTP
// API spell them: discrete, continuous, static (or time-agnostic),
// none (or affinity-agnostic), case-insensitively. The empty string
// selects the paper's default, Discrete.
func ParseTimeModel(name string) (TimeModel, error) {
	switch strings.ToLower(name) {
	case "", "discrete":
		return Discrete, nil
	case "continuous":
		return Continuous, nil
	case "static", "time-agnostic":
		return TimeAgnostic, nil
	case "none", "affinity-agnostic":
		return AffinityAgnostic, nil
	default:
		return 0, fmt.Errorf("repro: unknown time model %q (want discrete, continuous, static, none)", name)
	}
}

// String names the time model as in the paper's figures.
func (t TimeModel) String() string {
	switch t {
	case Discrete:
		return "discrete"
	case Continuous:
		return "continuous"
	case TimeAgnostic:
		return "time-agnostic"
	case AffinityAgnostic:
		return "affinity-agnostic"
	default:
		return fmt.Sprintf("TimeModel(%d)", int(t))
	}
}

// Options parameterizes one Recommend call. The zero value requests
// the paper's defaults: k=10, AP consensus, discrete time model at the
// latest period, 3900 candidate items, GRECA execution.
type Options struct {
	// K is the result size (10 if zero — the paper's default).
	K int
	// Consensus is the group consensus function (AP if zero value).
	Consensus consensus.Spec
	// TimeModel selects the affinity model variant.
	TimeModel TimeModel
	// Period is the 1-based number of the "now" period; 0 (the zero
	// value) means the latest period. Earlier periods reproduce the
	// paper's per-period scalability sweep (Figure 6).
	Period int
	// Items optionally fixes the candidate item set. When nil, the
	// NumItems most popular items not rated by any group member are
	// used (the paper's problem definition excludes items already
	// consumed by a member). The slice is copied at submission, so the
	// caller may reuse or mutate it as soon as the call is made.
	Items []dataset.ItemID
	// NumItems is the candidate count when Items is nil (3900 if
	// zero — the paper's default).
	NumItems int
	// Mode selects GRECA or a baseline executor.
	Mode core.Mode
	// CheckInterval is GRECA's stopping-check cadence in rounds
	// (1 = every round).
	CheckInterval int
	// ProgressEvery thins RecommendStream's progress frames to every
	// N-th stopping check (0 or 1 = every check). The terminal frame
	// is never thinned. Skipped checks build no snapshot, so large
	// values make streaming nearly as cheap as RecommendContext.
	ProgressEvery int
	// Epsilon, when positive, enables bound-gap ε stopping (NRA-style
	// ε-approximation): the run stops at the first stopping check
	// certifying that every item outside the current top-k — unseen
	// (bounded by the global threshold) or buffered (bounded by its
	// own upper bound) — scores less than Epsilon above the k-th best
	// guaranteed lower bound (core.Runner.EpsilonReached: the exact
	// threshold + buffer stopping conditions relaxed by ε). The
	// current top-k is returned as a Partial recommendation with
	// Stats.Stop = core.StopEpsilon — approximate exactness traded
	// for latency. 0 (the default) keeps runs exact; negative values
	// are rejected.
	Epsilon float64
	// MonolithicAffinityLists disables the paper's per-user
	// partitioning of affinity lists (ablation).
	MonolithicAffinityLists bool
	// LooseBounds disables cursor-based bound tightening (ablation;
	// see core.Input.LooseBounds).
	LooseBounds bool
}

// DefaultK and DefaultNumItems are the paper's §4.2 defaults.
const (
	DefaultK        = 10
	DefaultNumItems = 3900
)

// prefDivisor maps the 1..5 rating scale onto the [0,1] absolute
// preferences GRECA consumes. The sorted-list store normalizes with
// the same constant at build time so its views feed problems directly.
const prefDivisor = 5

// fill applies the paper's defaults to zero-valued fields and rejects
// values that are nonsensical rather than defaulted — negative K or
// NumItems would otherwise flow downstream as silently shrunken slices
// or allocation panics.
func (o *Options) fill() error {
	if o.K < 0 {
		return fmt.Errorf("repro: negative K %d", o.K)
	}
	if o.NumItems < 0 {
		return fmt.Errorf("repro: negative NumItems %d", o.NumItems)
	}
	if o.Epsilon < 0 || math.IsNaN(o.Epsilon) {
		return fmt.Errorf("repro: invalid Epsilon %v (want >= 0)", o.Epsilon)
	}
	if o.K == 0 {
		o.K = DefaultK
	}
	zero := consensus.Spec{}
	if o.Consensus == zero {
		o.Consensus = consensus.AP()
	}
	if o.NumItems == 0 {
		o.NumItems = DefaultNumItems
	}
	// Defensive copy: runs retain their candidate slice for their whole
	// lifetime (shared runs across several subscribers), so a caller
	// mutating its slice after submission must not reach them. The copy
	// of an empty slice stays non-nil — nil selects candidate
	// generation, empty is a (rejected) explicit choice.
	if o.Items != nil {
		o.Items = append(make([]dataset.ItemID, 0, len(o.Items)), o.Items...)
	}
	return nil
}

// ScoredItem is one recommended item. Score is the guaranteed lower
// bound of the item's consensus score (exact when UpperBound equals
// Score); GRECA's early termination may leave the top-k itemset only
// partially ordered, as the paper notes.
type ScoredItem struct {
	Item       dataset.ItemID
	Score      float64
	UpperBound float64
}

// Recommendation is the result of one Recommend call.
type Recommendation struct {
	Items []ScoredItem
	Stats core.AccessStats
	// Period is the resolved "now" period index.
	Period int
	// Partial marks a recommendation cut short before the exact
	// stopping conditions were met — a cancelled context, a streaming
	// consumer that stopped (both Stats.Stop = core.StopCancelled), or
	// the bound-gap ε policy firing (Stats.Stop = core.StopEpsilon).
	// Items then carry the best bounds known at interruption (possibly
	// fewer than K of them). Completed runs always have Partial false.
	Partial bool
}

// Recommend computes the top-k itemset for the ad-hoc group under opt.
// It is RecommendContext under a background context — a blocking,
// uncancellable call kept for compatibility.
func (w *World) Recommend(group []dataset.UserID, opt Options) (*Recommendation, error) {
	return w.RecommendContext(context.Background(), group, opt)
}

// BuildProblem exposes the assembled core problem for benchmarks and
// experiments that need direct control over Run modes. items maps the
// problem's item indexes back to dataset IDs. The problem escapes the
// facade here, so its preference rows are not pooled.
func (w *World) BuildProblem(group []dataset.UserID, opt Options) (*core.Problem, []dataset.ItemID, error) {
	prob, items, _, _, err := w.buildProblem(group, &opt)
	return prob, items, err
}

// buildProblem assembles the core problem. The returned release hands
// the problem's preference rows back to the assembler pool; callers
// must invoke it only once nothing can read the problem anymore, and
// exactly once (Recommend defers it; BuildProblem drops it so escaped
// problems keep their rows).
func (w *World) buildProblem(group []dataset.UserID, opt *Options) (*core.Problem, []dataset.ItemID, int, func(), error) {
	noRelease := func() {}
	if err := opt.fill(); err != nil {
		return nil, nil, 0, noRelease, err
	}
	if len(group) < 1 {
		return nil, nil, 0, noRelease, fmt.Errorf("repro: %w", ErrEmptyGroup)
	}
	// Duplicate-member check: quadratic scan for realistic group sizes
	// (this is on every request's hot path and a map would be its only
	// allocation), map for absurdly large groups.
	if len(group) <= 64 {
		for i, u := range group {
			for _, v := range group[:i] {
				if u == v {
					return nil, nil, 0, noRelease, fmt.Errorf("repro: %w %d", ErrDuplicateMember, u)
				}
			}
		}
	} else {
		seen := make(map[dataset.UserID]bool, len(group))
		for _, u := range group {
			if seen[u] {
				return nil, nil, 0, noRelease, fmt.Errorf("repro: %w %d", ErrDuplicateMember, u)
			}
			seen[u] = true
		}
	}

	last := w.lastPeriod()
	period := last
	if opt.Period != 0 {
		if opt.Period < 1 || opt.Period > last+1 {
			return nil, nil, 0, noRelease, fmt.Errorf("repro: %w: period %d outside [1,%d]", ErrPeriodOutOfRange, opt.Period, last+1)
		}
		period = opt.Period - 1
	}

	items := opt.Items
	if items == nil {
		items = w.CandidateItems(group, opt.NumItems)
	}
	if len(items) == 0 {
		return nil, nil, 0, noRelease, fmt.Errorf("repro: no candidate items for group")
	}
	if opt.K > len(items) {
		return nil, nil, 0, noRelease, fmt.Errorf("repro: %w: K=%d exceeds candidate count %d", ErrKExceedsCandidates, opt.K, len(items))
	}

	g := len(group)
	in := core.Input{
		Spec:              opt.Consensus,
		K:                 opt.K,
		PartitionAffinity: !opt.MonolithicAffinityLists,
		CheckInterval:     opt.CheckInterval,
		LooseBounds:       opt.LooseBounds,
	}

	// Absolute preferences: served from the sorted-list store when its
	// views cover this candidate slice (rows copied out of the
	// materialized views, only the patch remainder re-predicted), with
	// a dense fallback that batch-predicts and normalizes every row in
	// parallel. Both paths produce identical values; the served one
	// additionally carries the pre-sorted views so problem
	// construction merges instead of re-sorting. With remote shard
	// workers attached, either path fetches per-member data over the
	// wire and a dead worker surfaces here as a typed transport error
	// (ErrShardUnavailable / ErrShardTimeout).
	va, served, err := w.asm.AprefViews(group, items, prefDivisor)
	if err != nil {
		return nil, nil, 0, noRelease, fmt.Errorf("repro: assembling preferences: %w", err)
	}
	if served {
		in.Apref = va.Rows
	} else {
		in.Apref, err = w.asm.AprefRows(group, items, prefDivisor)
		if err != nil {
			return nil, nil, 0, noRelease, fmt.Errorf("repro: assembling preferences: %w", err)
		}
	}

	// Affinity components per the selected time model.
	switch opt.TimeModel {
	case AffinityAgnostic:
		in.Agg = core.NoAffinityAggregator{}
	case TimeAgnostic:
		in.Agg = core.StaticAggregator{}
		in.Static = w.staticPairs(group)
	case Continuous:
		in.Agg = core.ContinuousAggregator{Periods: period + 1, Rate: affinity.ContinuousRate}
		in.Static = w.staticPairs(group)
		in.Drift = w.driftPairs(group, period)
	default: // Discrete
		in.Agg = core.DiscreteAggregator{Periods: period + 1}
		in.Static = w.staticPairs(group)
		in.Drift = w.driftPairs(group, period)
	}
	if g < 2 {
		// Single-member group degenerates to individual top-k.
		in.Agg = core.NoAffinityAggregator{}
		in.Static, in.Drift = nil, nil
	}

	var prob *core.Problem
	if served {
		prob, err = core.NewProblemFromViews(in, va.Views)
	} else {
		prob, err = core.NewProblem(in)
	}
	if err != nil {
		w.asm.Release(in.Apref)
		return nil, nil, 0, noRelease, fmt.Errorf("repro: building problem: %w", err)
	}
	release := func() {
		w.asm.Release(in.Apref)
		prob.Release()
	}
	return prob, items, period, release, nil
}

// lastPeriod resolves the index of the newest indexed period under the
// period lock: AppendNextPeriod may be extending the timeline while
// requests resolve against it. A period index resolved here stays
// valid forever — periods only accrete, never move.
func (w *World) lastPeriod() int {
	w.periodMu.RLock()
	defer w.periodMu.RUnlock()
	return w.model.Timeline.NumPeriods() - 1
}

// staticPairs collects the normalized static affinities of all group
// pairs in core.PairIndex order. Values are already normalized to
// [0,1] over the population (§4.1.2 normalizes per group instead; a
// population-wide scale is the same up to a per-group constant but
// keeps affinities comparable across groups, which the scalability
// sweeps rely on).
func (w *World) staticPairs(group []dataset.UserID) []float64 {
	g := len(group)
	out := make([]float64, core.NumPairs(g))
	for i := 0; i < g; i++ {
		for j := i + 1; j < g; j++ {
			out[core.PairIndex(g, i, j)] = w.model.StaticOf(group[i], group[j])
		}
	}
	return out
}

// driftPairs collects the normalized periodic drifts for periods
// 0..period, each row in core.PairIndex order. The period lock covers
// the reads: an indexed period's drift table is immutable, but the
// model's per-period slice headers move when AppendNextPeriod extends
// the index.
func (w *World) driftPairs(group []dataset.UserID, period int) [][]float64 {
	w.periodMu.RLock()
	defer w.periodMu.RUnlock()
	g := len(group)
	out := make([][]float64, period+1)
	for t := 0; t <= period; t++ {
		row := make([]float64, core.NumPairs(g))
		for i := 0; i < g; i++ {
			for j := i + 1; j < g; j++ {
				row[core.PairIndex(g, i, j)] = w.model.DriftOf(group[i], group[j], t)
			}
		}
		out[t] = row
	}
	return out
}

// CandidateItems returns up to n of the most popular items that no
// group member has rated — the paper's candidate pool with the
// problem-definition exclusion applied. n <= 0 returns every unrated
// item. The popularity ranking is precomputed at store freeze and the
// group's rated items are OR-ed into one bitset up front, so the scan
// is O(candidates) single-word tests instead of per-item, per-member
// rating lookups.
func (w *World) CandidateItems(group []dataset.UserID, n int) []dataset.ItemID {
	ranked := w.ratings.PopularityRanked()
	capHint := n
	if capHint <= 0 || capHint > len(ranked) {
		capHint = len(ranked)
	}
	out := make([]dataset.ItemID, 0, capHint)
	mask := w.ratings.GroupRatedMask(group)
	for _, it := range ranked {
		if mask != nil {
			if mask.Has(it) {
				continue
			}
		} else {
			// Sparse or adversarial item IDs disabled bitsets; fall
			// back to per-member lookups.
			rated := false
			for _, u := range group {
				if w.ratings.HasRated(u, it) {
					rated = true
					break
				}
			}
			if rated {
				continue
			}
		}
		out = append(out, it)
		if len(out) == n {
			break
		}
	}
	return out
}

// PairAffinity returns the pairwise affinity of (u,v) under the given
// time model at period index (use -1 for the latest period). It is the
// exact value GRECA's lists are built from, before group-level static
// re-normalization.
func (w *World) PairAffinity(u, v dataset.UserID, tm TimeModel, period int) float64 {
	w.periodMu.RLock()
	defer w.periodMu.RUnlock()
	last := w.model.Timeline.NumPeriods() - 1
	if period < 0 || period > last {
		period = last
	}
	switch tm {
	case AffinityAgnostic:
		return 0
	case TimeAgnostic:
		return w.model.TimeAgnostic(u, v)
	case Continuous:
		return w.model.Continuous(u, v, period)
	default:
		return w.model.Discrete(u, v, period)
	}
}
