package social

import (
	"repro/internal/dataset"
	"strings"
	"testing"
)

// FuzzLoadNetwork asserts the CSV network loader never panics and that
// accepted networks satisfy basic invariants (symmetric friendships,
// time-sorted likes, in-range categories).
func FuzzLoadNetwork(f *testing.F) {
	f.Add("user_a,user_b\n0,1\n", "user,category,timestamp\n0,5,100\n")
	f.Add("0,1\n1,2\n", "1,196,0\n")
	f.Add("a,b\nx,y\n", "q,w,e\n")
	f.Add("0,0\n", "")
	f.Add("", "0,999,1\n")
	f.Add("0,1,2\n", "0,1\n")
	f.Fuzz(func(t *testing.T, friendships, likes string) {
		nw, err := LoadNetwork(8, strings.NewReader(friendships), strings.NewReader(likes))
		if err != nil {
			return
		}
		for u := 0; u < 8; u++ {
			for v := u + 1; v < 8; v++ {
				if nw.AreFriends(dataset.UserID(u), dataset.UserID(v)) != nw.AreFriends(dataset.UserID(v), dataset.UserID(u)) {
					t.Fatal("asymmetric friendship")
				}
			}
			var prev int64 = -1 << 62
			for _, l := range nw.Likes(dataset.UserID(u)) {
				if l.Time < prev {
					t.Fatal("likes not time-sorted")
				}
				prev = l.Time
				if l.Category < 0 || l.Category >= NumFacebookCategories {
					t.Fatalf("accepted bad category %d", l.Category)
				}
			}
		}
	})
}
