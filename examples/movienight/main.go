// Movienight: the paper's motivating scenario — the same person gets
// different movies depending on who they watch with and when. We form
// three groups around one focal user (close friends, strangers, and a
// mixed crowd), recommend under every consensus function, and show how
// the lists shift.
//
//	go run ./examples/movienight
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/consensus"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	world, err := repro.NewWorld(repro.QuickConfig())
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	participants := world.Participants()
	focal := participants[0]

	// Rank everyone by current (discrete, latest-period) affinity to
	// the focal user.
	type buddy struct {
		user dataset.UserID
		aff  float64
	}
	var buddies []buddy
	for _, u := range participants[1:] {
		buddies = append(buddies, buddy{u, world.PairAffinity(focal, u, repro.Discrete, -1)})
	}
	sort.Slice(buddies, func(i, j int) bool { return buddies[i].aff > buddies[j].aff })

	closeFriends := []dataset.UserID{focal, buddies[0].user, buddies[1].user, buddies[2].user}
	strangers := []dataset.UserID{focal, buddies[len(buddies)-1].user, buddies[len(buddies)-2].user, buddies[len(buddies)-3].user}
	mixed := []dataset.UserID{focal, buddies[0].user, buddies[len(buddies)-1].user, buddies[len(buddies)/2].user}

	groups := []struct {
		name    string
		members []dataset.UserID
	}{
		{"close friends", closeFriends},
		{"strangers", strangers},
		{"mixed crowd", mixed},
	}
	specs := []struct {
		name string
		spec consensus.Spec
	}{
		{"AP (average preference)", consensus.AP()},
		{"MO (least misery)", consensus.MO()},
		{"PD (pairwise disagreement)", consensus.PD(0.8)},
	}

	for _, g := range groups {
		fmt.Printf("== movie night with %s: %v\n", g.name, g.members)
		minAff, maxAff := pairRange(world, g.members)
		fmt.Printf("   pairwise affinity range [%.2f, %.2f]\n", minAff, maxAff)
		for _, s := range specs {
			rec, err := world.Recommend(g.members, repro.Options{
				K: 5, NumItems: 600, Consensus: s.spec,
			})
			if err != nil {
				log.Fatalf("recommend %s/%s: %v", g.name, s.name, err)
			}
			fmt.Printf("   %-28s", s.name+":")
			for _, item := range rec.Items {
				fmt.Printf(" %d", item.Item)
			}
			fmt.Printf("   (%.1f%% accesses)\n", rec.Stats.PercentSA())
		}
		fmt.Println()
	}
	fmt.Println("Note how the focal user's lists change with the company —")
	fmt.Println("the paper's premise that preference is relative to the group.")
}

func pairRange(w *repro.World, members []dataset.UserID) (lo, hi float64) {
	lo, hi = 1, 0
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			a := w.PairAffinity(members[i], members[j], repro.Discrete, -1)
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
	}
	return lo, hi
}
