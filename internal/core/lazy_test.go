package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/consensus"
)

// forceMaterialize builds every lazy list of p up front, turning it
// into the eager problem the pre-lazy constructor produced.
func forceMaterialize(p *Problem) {
	for _, l := range p.lists {
		l.materialize()
	}
}

// TestLazyAgreementConstructionDefersSort pins the laziness contract:
// building a PD problem installs closures only, bound metadata resolves
// without sorting, and the first consumed entry materializes exactly
// the canonical list the eager build produced.
func TestLazyAgreementConstructionDefersSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInput(rng, 6, 120, 2, 5, consensus.PD(0.5), DiscreteAggregator{Periods: 2})
	p, err := NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.pairAgreement) != NumPairs(6) {
		t.Fatalf("pairAgreement has %d lists, want %d", len(p.pairAgreement), NumPairs(6))
	}
	for pr, l := range p.pairAgreement {
		if l.lazy == nil {
			t.Fatalf("pair %d built eagerly at construction", pr)
		}
		if l.Len() != 120 {
			t.Fatalf("pair %d Len = %d before materialization, want 120", pr, l.Len())
		}
		// Bound metadata must not force the sort.
		lo, hi := l.Min(), l.Top()
		if l.lazy == nil || l.Entries != nil {
			t.Fatalf("pair %d sorted by a Min/Top read", pr)
		}
		if cv := l.CursorValue(); cv != hi {
			t.Fatalf("pair %d pre-read CursorValue %g != Top %g", pr, cv, hi)
		}
		// First consumption materializes the canonical list; metadata
		// must agree with it exactly.
		e, ok := l.Next()
		if !ok || l.lazy != nil {
			t.Fatalf("pair %d Next did not materialize (ok=%v)", pr, ok)
		}
		if got := l.Entries[0].Value; got != hi || e.Value != hi {
			t.Fatalf("pair %d Top %g != materialized max %g", pr, hi, got)
		}
		if got := l.Entries[len(l.Entries)-1].Value; got != lo || l.MinValue != lo {
			t.Fatalf("pair %d Min %g != materialized min %g (MinValue %g)", pr, lo, got, l.MinValue)
		}
		for i := 1; i < len(l.Entries); i++ {
			a, b := l.Entries[i-1], l.Entries[i]
			if a.Value < b.Value || (a.Value == b.Value && a.Key > b.Key) {
				t.Fatalf("pair %d entry %d out of canonical order", pr, i)
			}
		}
	}
}

// TestLazyAgreementBitIdenticalToEager runs the same PD instance twice
// per mode — once with the agreement lists force-materialized up front
// (the former eager layout) and once lazily — and requires identical
// results and access statistics.
func TestLazyAgreementBitIdenticalToEager(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range []int{2, 5, 8} {
		for _, w1 := range []float64{0.8, 0.2} {
			in := randomInput(rng, g, 150, 2, 5, consensus.PD(w1), DiscreteAggregator{Periods: 2})
			for _, mode := range []Mode{ModeGRECA, ModeThresholdExact, ModeFullScan, ModeTA} {
				eager, err := NewProblem(in)
				if err != nil {
					t.Fatal(err)
				}
				forceMaterialize(eager)
				lazy, err := NewProblem(in)
				if err != nil {
					t.Fatal(err)
				}
				want, err := eager.Run(mode)
				if err != nil {
					t.Fatal(err)
				}
				got, err := lazy.Run(mode)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("g=%d w1=%g mode=%v: lazy result diverges\neager: %+v\nlazy:  %+v", g, w1, mode, want, got)
				}
			}
		}
	}
}

// TestLazyAgreementTANeverSorts pins the structural win: TA's sweep
// reads preference lists only (agreement values resolve via random
// accesses straight from the dense rows), so a complete TA run must
// leave every agreement list unbuilt — the O(g²·m log m) sort never
// happens, only the O(g²·m) bound scans.
func TestLazyAgreementTANeverSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInput(rng, 6, 200, 2, 5, consensus.PD(0.8), DiscreteAggregator{Periods: 2})
	p, err := NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(ModeTA); err != nil {
		t.Fatal(err)
	}
	for pr, l := range p.pairAgreement {
		if l.lazy == nil {
			t.Fatalf("pair %d was sorted during a TA run", pr)
		}
		if !l.lazy.scanned {
			t.Fatalf("pair %d bounds never scanned — TA's threshold should have read them", pr)
		}
	}
}

// TestLazyAgreementAbandonedRunSkipsBuild pins the cancel win: a
// problem whose runner is abandoned before any step never fills or
// sorts a single agreement list.
func TestLazyAgreementAbandonedRunSkipsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInput(rng, 5, 100, 2, 4, consensus.PD(0.5), DiscreteAggregator{Periods: 2})
	p, err := NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Runner(ModeGRECA); err != nil {
		t.Fatal(err)
	}
	// Abandon without stepping.
	for pr, l := range p.pairAgreement {
		if l.lazy == nil {
			t.Fatalf("pair %d built for a run that never stepped", pr)
		}
	}
	if p.TotalEntries() == 0 {
		t.Fatal("TotalEntries must count unbuilt lists")
	}
	p.Release() // no pooled buffers were taken; must be a clean no-op
}

// TestLazyAgreementPooledBuffersReleased checks that lazily built
// agreement lists draw from the entry pool on the view path and that
// Release hands exactly the materialized buffers back.
func TestLazyAgreementPooledBuffersReleased(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randomInput(rng, 4, 80, 2, 3, consensus.PD(0.2), DiscreteAggregator{Periods: 2})
	in.PartitionAffinity = true
	p, err := NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.pooled); got != 0 {
		t.Fatalf("constructor took %d pooled buffers before any run", got)
	}
	if _, err := p.Run(ModeGRECA); err != nil {
		t.Fatal(err)
	}
	// GRECA's sweep consumes every list from round one, so all pairs
	// materialized; NewProblem's alloc is plain make, so nothing pooled.
	if got := len(p.pooled); got != 0 {
		t.Fatalf("NewProblem run pooled %d buffers, want 0 (plain alloc)", got)
	}
	for pr, l := range p.pairAgreement {
		if l.lazy != nil {
			t.Fatalf("pair %d still lazy after a GRECA run", pr)
		}
	}
}
