package repro

import (
	"context"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cf"
	"repro/internal/core"
	"repro/internal/dataset"
)

// runMux is the shared-runner multiplexer: a singleflight over
// in-flight recommendation runs, keyed on a canonical (group, options)
// fingerprint. Identical concurrent RecommendContext / RecommendStream
// calls (and the batch/coalescer traffic funneling through them) ride
// one core.Runner driven by one goroutine, with per-subscriber fan-out:
// each subscriber's context, ProgressEvery thinning, and Epsilon policy
// are honored independently, and the run is abandoned when its last
// subscriber detaches. Only in-flight runs are shared — a run's map
// entry is removed before its results are delivered, so the mux never
// serves a cached result.
type runMux struct {
	mu   sync.Mutex
	runs map[string]*muxRun

	started atomic.Int64 // runs actually driven
	shared  atomic.Int64 // joins that attached to an in-flight run
}

func newRunMux() *runMux {
	return &runMux{runs: make(map[string]*muxRun)}
}

// MuxStats counts the shared-runner multiplexer's traffic. Shared is
// the saving: each shared join is one full run that did not happen.
type MuxStats struct {
	// Runs is the number of runner executions actually driven.
	Runs int64 `json:"runs"`
	// Shared is the number of calls served by another identical call's
	// run instead of starting their own — mux joins on an in-flight
	// run and within-batch duplicates both count.
	Shared int64 `json:"shared"`
	// Active is the number of currently in-flight shared runs.
	Active int `json:"active"`
}

// MuxStats snapshots the shared-runner multiplexer counters (zero when
// Config.DisableRunSharing turned the mux off). The counters are
// atomic; Runs/Shared/Active are only eventually consistent with each
// other.
func (w *World) MuxStats() MuxStats {
	if w.mux == nil {
		return MuxStats{}
	}
	m := w.mux
	m.mu.Lock()
	active := len(m.runs)
	m.mu.Unlock()
	return MuxStats{
		Runs:   m.started.Load(),
		Shared: m.shared.Load(),
		Active: active,
	}
}

// muxSub is one subscriber of a shared run: its cancellation context,
// its progress fan-out settings, and the settled outcome. done closes
// exactly once, after rec/err are written; the subscriber's goroutine
// parks on it, so the close is the happens-before edge publishing the
// result (and ordering the driver's fn invocations before the
// subscriber resumes).
type muxSub struct {
	ctx      context.Context
	fn       func(Progress) bool
	every    int
	eps      float64
	joinedAt int // run step count at join; thinning is relative to it

	rec  *Recommendation
	err  error
	done chan struct{}
}

func (s *muxSub) settle(rec *Recommendation, err error) {
	s.rec, s.err = rec, err
	close(s.done)
}

// muxRun is one in-flight shared run. Lock order: runMux.mu before
// muxRun.mu, always. The closed flag and the map entry flip together
// under both locks — joiners that find the run in the map are
// therefore guaranteed to attach before the driver finalizes, and the
// driver's final sweep is guaranteed to see them.
type muxRun struct {
	mux   *runMux
	w     *World
	key   string
	group []dataset.UserID
	// opt is the canonical option set driving the run; the
	// per-subscriber fields (ProgressEvery, Epsilon) are zeroed.
	opt Options

	mu     sync.Mutex
	subs   []*muxSub
	steps  int
	closed bool
}

// join attaches to the in-flight run for (group, opt) or starts one.
// opt must already be filled.
func (m *runMux) join(ctx context.Context, w *World, group []dataset.UserID, opt Options, fn func(Progress) bool) *muxSub {
	every := opt.ProgressEvery
	if every <= 0 {
		every = 1
	}
	sub := &muxSub{ctx: ctx, fn: fn, every: every, eps: opt.Epsilon, done: make(chan struct{})}
	key := runFingerprint(group, &opt)
	m.mu.Lock()
	if ru, ok := m.runs[key]; ok {
		ru.mu.Lock()
		sub.joinedAt = ru.steps
		ru.subs = append(ru.subs, sub)
		ru.mu.Unlock()
		m.mu.Unlock()
		m.shared.Add(1)
		return sub
	}
	ru := &muxRun{mux: m, w: w, key: key, group: group, opt: opt, subs: []*muxSub{sub}}
	ru.opt.ProgressEvery = 0
	ru.opt.Epsilon = 0
	m.runs[key] = ru
	m.mu.Unlock()
	m.started.Add(1)
	go ru.drive()
	return sub
}

// snapshotSubs copies the current subscriber list into buf (reused
// across the driver's steps so steady-state snapshots allocate
// nothing) and returns it.
func (ru *muxRun) snapshotSubs(buf []*muxSub) []*muxSub {
	ru.mu.Lock()
	buf = append(buf[:0], ru.subs...)
	ru.mu.Unlock()
	return buf
}

// detach removes a settled subscriber.
func (ru *muxRun) detach(s *muxSub) {
	ru.mu.Lock()
	for i, t := range ru.subs {
		if t == s {
			ru.subs = append(ru.subs[:i], ru.subs[i+1:]...)
			break
		}
	}
	ru.mu.Unlock()
}

// tryAbandon ends a run whose subscribers all detached. It re-checks
// under both locks: a joiner may have attached between the driver's
// empty snapshot and the lock acquisition, in which case the run keeps
// driving for it.
func (ru *muxRun) tryAbandon() bool {
	ru.mux.mu.Lock()
	ru.mu.Lock()
	if len(ru.subs) > 0 {
		ru.mu.Unlock()
		ru.mux.mu.Unlock()
		return false
	}
	delete(ru.mux.runs, ru.key)
	ru.closed = true
	ru.mu.Unlock()
	ru.mux.mu.Unlock()
	return true
}

// finishTakeAll removes the run from the mux and returns the remaining
// subscribers for final settlement. After it returns, no new joiner can
// see the run, so the returned list is complete.
func (ru *muxRun) finishTakeAll() []*muxSub {
	ru.mux.mu.Lock()
	ru.mu.Lock()
	delete(ru.mux.runs, ru.key)
	ru.closed = true
	subs := ru.subs
	ru.subs = nil
	ru.mu.Unlock()
	ru.mux.mu.Unlock()
	return subs
}

// drive runs the shared runner to completion (or abandonment) on its
// own goroutine. The loop body replicates recommendStreamDirect's
// ordering exactly — per-subscriber context check before the step, one
// Step, progress frame on (done || every-th step since join), consumer
// stop before the epsilon check, epsilon stop, then termination — so a
// run with one subscriber is step-for-step identical to the unshared
// path, and every subscriber of a shared run settles with exactly the
// bytes a solo run would have produced at the same stopping point.
// Each subscriber gets its own Progress frames and its own
// Recommendation; nothing settled is shared between subscribers.
func (ru *muxRun) drive() {
	w := ru.w
	prob, items, period, release, err := w.buildProblem(ru.group, &ru.opt)
	if err != nil {
		ru.failAll(err)
		return
	}
	defer release()
	r, err := prob.Runner(ru.opt.Mode)
	if err != nil {
		ru.failAll(err)
		return
	}
	var subsBuf []*muxSub
	for {
		subs := ru.snapshotSubs(subsBuf)
		subsBuf = subs
		if len(subs) == 0 {
			if ru.tryAbandon() {
				return
			}
			continue // a joiner raced the abandon; keep driving
		}
		detached := false
		for _, s := range subs {
			if err := s.ctx.Err(); err != nil {
				s.settle(w.partialRecommendation(r.Snapshot(), items, period, core.StopCancelled), err)
				ru.detach(s)
				detached = true
			}
		}
		if detached {
			subs = ru.snapshotSubs(subsBuf)
			subsBuf = subs
			if len(subs) == 0 {
				if ru.tryAbandon() {
					return
				}
				continue
			}
		}
		done := r.Step(1)
		ru.mu.Lock()
		ru.steps++
		steps := ru.steps
		ru.mu.Unlock()
		for _, s := range subs {
			if s.fn != nil && (done || (steps-s.joinedAt)%s.every == 0) {
				snap := r.Snapshot()
				if !s.fn(progressFrom(snap, items)) && !done {
					s.settle(w.partialRecommendation(snap, items, period, core.StopCancelled), nil)
					ru.detach(s)
					continue
				}
			}
			if r.EpsilonReached(s.eps) {
				s.settle(w.partialRecommendation(r.Snapshot(), items, period, core.StopEpsilon), nil)
				ru.detach(s)
			}
		}
		if done {
			break
		}
	}
	res, err := r.Result()
	for _, s := range ru.finishTakeAll() {
		if err != nil {
			s.settle(nil, err)
			continue
		}
		rec := &Recommendation{Stats: res.Stats, Period: period}
		for _, is := range res.TopK {
			rec.Items = append(rec.Items, ScoredItem{
				Item:       items[is.Key],
				Score:      is.LB,
				UpperBound: is.UB,
			})
		}
		s.settle(rec, nil)
	}
}

// failAll settles every subscriber with a setup error.
func (ru *muxRun) failAll(err error) {
	for _, s := range ru.finishTakeAll() {
		s.settle(nil, err)
	}
}

// runFingerprint canonicalizes (group, options) for the mux key. The
// group is fingerprinted in its EXACT order: float summation is
// order-sensitive, so two member orderings are distinct computations
// whose results may differ in the last bit — sharing them would break
// the bit-identicality contract. The per-subscriber fields
// (ProgressEvery, Epsilon) are excluded; everything else that shapes
// the run participates. A non-nil Items slice is keyed by CONTENT —
// two independent hashes plus the length — never by slice identity:
// a run's result depends only on the candidate values, callers'
// slices are defensively copied at submission (Options.fill), and
// identity keys would both under-share equal-content slices and
// mis-share a reused backing array whose contents changed.
func runFingerprint(group []dataset.UserID, o *Options) string {
	var arr [128]byte
	return string(appendRunFingerprint(arr[:0], group, o))
}

// itemsHash2 is the second, independent hash over a candidate slice
// (the first is cf.FingerprintItems' FNV-1a): a polynomial rolling
// hash with a distinct modulus-free multiplier. Colliding on both
// hashes AND the length simultaneously is what a false share would
// require.
func itemsHash2(items []dataset.ItemID) uint64 {
	var h uint64 = 1469598103934665603
	for _, it := range items {
		h = h*0x9E3779B97F4A7C15 + uint64(it) + 1
	}
	return h
}

// appendRunFingerprint appends the canonical fingerprint to b — the
// building block shared by the mux key and the batch dedup key (which
// extends it with the fields that are per-subscriber here but
// result-shaping there).
func appendRunFingerprint(b []byte, group []dataset.UserID, o *Options) []byte {
	for _, u := range group {
		b = strconv.AppendInt(b, int64(u), 10)
		b = append(b, ',')
	}
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.K), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.Consensus.Pref), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(o.Consensus.Dis), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, math.Float64bits(o.Consensus.W1), 16)
	b = append(b, ',')
	b = strconv.AppendUint(b, math.Float64bits(o.Consensus.W2), 16)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.TimeModel), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.Period), 10)
	b = append(b, '|')
	if o.Items == nil {
		b = append(b, 'n')
	} else {
		b = strconv.AppendUint(b, cf.FingerprintItems(o.Items), 16)
		b = append(b, ':')
		b = strconv.AppendUint(b, itemsHash2(o.Items), 16)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(len(o.Items)), 10)
	}
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.NumItems), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.Mode), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.CheckInterval), 10)
	b = append(b, '|')
	if o.MonolithicAffinityLists {
		b = append(b, 'M')
	}
	if o.LooseBounds {
		b = append(b, 'L')
	}
	return b
}
