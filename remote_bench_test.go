// Distributed serving benchmark: the warmed request mix replayed
// against a router whose shards live in worker processes reached over
// loopback TCP (in-process goroutines speaking the real wire
// protocol), versus the in-process worlds the other benchmarks
// measure. The delta against BenchmarkRecommendSharded at the same
// shard count is the transport tax: framing, CRC, syscalls, and the
// view-chunk reassembly.
//
//	go test -bench BenchmarkRecommendRemote -benchtime 2s
package repro_test

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"

	"repro"
	"repro/internal/remote"
)

// remoteBenchStack builds a router fronting nWorkers loopback workers
// over a `shards`-way world, with the shards dealt round-robin.
// viewCache sizes the router's remote view cache (0 = disabled, the
// production default).
func remoteBenchStack(b *testing.B, shards, nWorkers, viewCache int) *repro.World {
	b.Helper()
	cfg := repro.QuickConfig()
	cfg.AssemblyWorkers = 1
	cfg.Shards = shards

	owns := make([][]int, nWorkers)
	for sh := 0; sh < shards; sh++ {
		owns[sh%nWorkers] = append(owns[sh%nWorkers], sh)
	}
	var workers []remote.Worker
	for _, owned := range owns {
		w, err := repro.NewWorld(cfg)
		if err != nil {
			b.Fatalf("worker world: %v", err)
		}
		backend, err := repro.NewShardBackend(w, owned)
		if err != nil {
			b.Fatalf("shard backend: %v", err)
		}
		srv := remote.NewServer(backend)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("listen: %v", err)
		}
		go srv.Serve(lis)
		b.Cleanup(srv.Close)
		workers = append(workers, remote.Worker{Addr: lis.Addr().String(), Owns: owned})
	}
	topJSON, _ := json.Marshal(remote.Topology{Shards: shards, Workers: workers})
	top, err := remote.ParseTopology(topJSON)
	if err != nil {
		b.Fatalf("topology: %v", err)
	}
	set, err := remote.NewShardSet(top, remote.ClientConfig{})
	if err != nil {
		b.Fatalf("shard set: %v", err)
	}
	b.Cleanup(set.Close)
	// The cache knob is router-local (excluded from the config
	// fingerprint), so only the router world carries it.
	cfg.RemoteViewCache = viewCache
	router, err := repro.NewWorld(cfg)
	if err != nil {
		b.Fatalf("router world: %v", err)
	}
	if err := router.AttachRemote(set); err != nil {
		b.Fatalf("AttachRemote: %v", err)
	}
	return router
}

// runRemoteBench replays the warmed group mix through a distributed
// router, reporting wire-call extras from the transport counter deltas:
// rpcs/op is total calls per Recommend, view_rpcs/op the view-fetch
// calls alone — the number the batched ops collapse from O(members) to
// O(workers).
func runRemoteBench(b *testing.B, shards, nWorkers, viewCache int) {
	opt := repro.Options{K: 10, NumItems: 600}
	router := remoteBenchStack(b, shards, nWorkers, viewCache)
	_, groups := shardBenchWorld(b, shards)
	for _, g := range groups {
		if _, err := router.Recommend(g, opt); err != nil {
			b.Fatalf("warmup: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	before := router.RemoteStats().Transport
	for i := 0; i < b.N; i++ {
		g := groups[i%len(groups)]
		if _, err := router.Recommend(g, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := router.RemoteStats().Transport
	n := float64(b.N)
	b.ReportMetric(float64(after.TotalCalls()-before.TotalCalls())/n, "rpcs/op")
	views := (after.CallsByOp["view"] + after.CallsByOp["view_multi"]) -
		(before.CallsByOp["view"] + before.CallsByOp["view_multi"])
	b.ReportMetric(float64(views)/n, "view_rpcs/op")
}

// BenchmarkRecommendRemote measures steady-state Recommend latency
// through the distributed stack on the warmed group mix — every view
// and prediction row crosses the wire, one batched RPC per worker per
// assembly. shards=1/workers=1 is the minimal-hop configuration;
// shards=4/workers=2 is the CI e2e split.
func BenchmarkRecommendRemote(b *testing.B) {
	cases := []struct{ shards, workers int }{
		{1, 1},
		{4, 2},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", tc.shards, tc.workers), func(b *testing.B) {
			runRemoteBench(b, tc.shards, tc.workers, 0)
		})
	}
}

// BenchmarkRecommendRemoteBatched is the same stack with the router's
// apply-seq-coherent view cache enabled: the steady-state group mix
// hits warm views, so the view-fetch RPCs drop toward zero and the
// remaining wire cost is the prediction path. The delta against
// BenchmarkRecommendRemote at the same split is what the cache buys.
func BenchmarkRecommendRemoteBatched(b *testing.B) {
	cases := []struct{ shards, workers int }{
		{1, 1},
		{4, 2},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", tc.shards, tc.workers), func(b *testing.B) {
			runRemoteBench(b, tc.shards, tc.workers, 4096)
		})
	}
}
