// Package engine is the assembly layer of the recommendation pipeline:
// it turns (group, candidate items) into the dense absolute-preference
// rows the GRECA core consumes, filling the g rows concurrently over a
// worker pool and recycling row buffers through a sync.Pool. It sits
// between the preference layer (cf.Source, possibly wrapped in a
// cf.CachedSource) and the core problem builder; see DESIGN.md.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/cf"
	"repro/internal/dataset"
)

// Assembler fills preference matrices from a cf.Source. It is
// immutable after New and safe for concurrent use; a single Assembler
// is meant to be shared by all traffic against one World.
type Assembler struct {
	src     cf.Source
	into    cf.BatchInto // src's in-place path, when it has one
	workers int
	rows    sync.Pool // *[]float64, capacity grows to the largest row seen
}

// New builds an Assembler over src with the given per-call worker
// bound (GOMAXPROCS if workers <= 0). workers = 1 forces sequential
// assembly — the baseline the parallel benchmarks compare against.
func New(src cf.Source, workers int) *Assembler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &Assembler{src: src, workers: workers}
	a.into, _ = src.(cf.BatchInto)
	a.rows.New = func() any { s := make([]float64, 0); return &s }
	return a
}

// Workers returns the per-call worker bound.
func (a *Assembler) Workers() int { return a.workers }

// Source returns the preference source the assembler reads.
func (a *Assembler) Source() cf.Source { return a.src }

// AprefRows returns the g×m matrix of predicted ratings divided by
// divisor (the engine passes 5 to map the 1..5 scale onto [0,1]).
// Rows are filled concurrently, one member per task, over at most
// min(workers, g) goroutines; each fill resolves that member's
// neighborhood exactly once via the source's batch path.
//
// Row buffers come from an internal pool. Callers that drop the matrix
// after a bounded lifetime (run the problem, copy the result out)
// should hand it back via Release; callers that expose the matrix
// beyond their control must simply not Release it, and the pool
// re-allocates.
func (a *Assembler) AprefRows(group []dataset.UserID, items []dataset.ItemID, divisor float64) [][]float64 {
	g := len(group)
	out := make([][]float64, g)
	if g == 0 {
		return out
	}
	fill := func(ui int) {
		row := a.getRow(len(items))
		if a.into != nil {
			a.into.PredictBatchInto(group[ui], items, row)
		} else {
			copy(row, a.src.PredictBatch(group[ui], items))
		}
		for i := range row {
			row[i] /= divisor
		}
		out[ui] = row
	}
	w := a.workers
	if w > g {
		w = g
	}
	if w <= 1 {
		for ui := range group {
			fill(ui)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for n := 0; n < w; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ui := range next {
				fill(ui)
			}
		}()
	}
	for ui := range group {
		next <- ui
	}
	close(next)
	wg.Wait()
	return out
}

// Release returns AprefRows buffers to the pool. The caller must hold
// the only remaining references: nothing may read the rows after this.
func (a *Assembler) Release(rows [][]float64) {
	for i, row := range rows {
		if row == nil {
			continue
		}
		r := row[:0]
		a.rows.Put(&r)
		rows[i] = nil
	}
}

func (a *Assembler) getRow(n int) []float64 {
	p := a.rows.Get().(*[]float64)
	if cap(*p) < n {
		return make([]float64, n)
	}
	// No zeroing: Source predictions are total, so every element is
	// overwritten before the row is read.
	return (*p)[:n]
}
