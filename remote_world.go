package repro

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/remote"
)

// This file is the world's side of the distributed deployment: the
// router attaches a remote.ShardSet so per-user data-plane reads
// scatter to worker processes, and a worker wraps its world in a
// ShardBackend so remote.Server can serve them. Both processes build
// the same deterministic world from the same configuration — the
// config fingerprint handshake enforces it — so moving shards out of
// process never changes a served byte; see DESIGN.md "Distributed
// world".

// ConfigFingerprint identifies the world-shaping configuration — the
// same FNV-64a digest the persistence layer gates snapshots and WALs
// with, reused by the distributed hello handshake so a router only
// talks to workers built from its exact world.
func (w *World) ConfigFingerprint() uint64 { return configFingerprint(w.cfg) }

// AttachRemote switches the world's per-user data plane to the worker
// fleet behind set: view fetches and batch predictions route to each
// user's owning worker, rating ingest fans out to every replica, and
// /v1/stats reports the workers' cache counters. The topology's shard
// count must equal the world's, and every worker must be reachable
// and fingerprint-identical (the handshake runs eagerly here, so a
// misconfigured fleet fails at boot, not on the first request).
//
// Call before serving traffic; attaching is not synchronized against
// in-flight requests.
func (w *World) AttachRemote(set *remote.ShardSet) error {
	if set.Shards() != w.sm.N() {
		return fmt.Errorf("repro: topology has %d shards, world has %d", set.Shards(), w.sm.N())
	}
	if err := set.Handshake(w.ConfigFingerprint(), w.sm.N()); err != nil {
		return fmt.Errorf("repro: attaching remote shards: %w", err)
	}
	// A view is the pool-order score vector, so its length is exactly
	// the candidate pool's — pin the transport's claimed-total bound to
	// it, rejecting any larger claim before allocation.
	set.LimitViewScores(len(w.ratings.PopularityRanked()))
	w.remote = set
	w.asm.AttachRemote(remotePlane{set: set})
	return nil
}

// Remote returns the attached worker fleet, or nil in-process.
func (w *World) Remote() *remote.ShardSet { return w.remote }

// remotePlane adapts the shard-set client to the assembler's
// data-plane seam.
type remotePlane struct{ set *remote.ShardSet }

func (p remotePlane) ViewScores(u dataset.UserID) ([]float64, error) {
	return p.set.ViewScores(u)
}

func (p remotePlane) PredictBatch(u dataset.UserID, items []dataset.ItemID) ([]float64, error) {
	return p.set.PredictBatch(u, items)
}

// ShardBackend is the worker process's side of the data plane: a full
// replica world serving the per-shard operations for the shards this
// worker owns, behind the remote.Backend interface cmd/greca-shard
// plugs into remote.NewServer.
type ShardBackend struct {
	w     *World
	owned []int
}

// NewShardBackend wraps w as the backend for the given owned shards.
// Shard indexes must be valid for the world and free of duplicates.
func NewShardBackend(w *World, owned []int) (*ShardBackend, error) {
	if len(owned) == 0 {
		return nil, fmt.Errorf("repro: shard backend owns no shards")
	}
	seen := make(map[int]bool, len(owned))
	for _, sh := range owned {
		if sh < 0 || sh >= w.Shards() {
			return nil, fmt.Errorf("repro: owned shard %d outside [0,%d)", sh, w.Shards())
		}
		if seen[sh] {
			return nil, fmt.Errorf("repro: shard %d owned twice", sh)
		}
		seen[sh] = true
	}
	return &ShardBackend{w: w, owned: append([]int(nil), owned...)}, nil
}

// Fingerprint implements remote.Backend.
func (b *ShardBackend) Fingerprint() uint64 { return b.w.ConfigFingerprint() }

// Shards implements remote.Backend.
func (b *ShardBackend) Shards() int { return b.w.Shards() }

// Owned implements remote.Backend.
func (b *ShardBackend) Owned() []int { return append([]int(nil), b.owned...) }

// ViewScores implements remote.Backend: u's pool-order normalized
// preference scores, served from the sorted-list store when enabled
// (materializing and caching the view exactly like local traffic
// would) and computed directly from the predictor otherwise.
func (b *ShardBackend) ViewScores(u dataset.UserID) ([]float64, error) {
	if b.w.lists != nil {
		return b.w.lists.Acquire(u).Scores, nil
	}
	pool := b.w.ratings.PopularityRanked()
	raw := b.w.source.PredictBatch(u, pool)
	scores := make([]float64, len(raw))
	for i, v := range raw {
		scores[i] = v / prefDivisor
	}
	return scores, nil
}

// PredictBatch implements remote.Backend: raw (1..5 scale)
// predictions through the worker's row cache, exactly the values the
// router's own source would produce.
func (b *ShardBackend) PredictBatch(u dataset.UserID, items []dataset.ItemID) ([]float64, error) {
	return b.w.source.PredictBatch(u, items), nil
}

// Apply implements remote.Backend: ingest one fanned-out rating into
// the replica — the full AddRating path, scoped invalidation included
// — and ack with the replica's delta counters. Rejections unwrap to
// the dataset sentinels, which the transport relays by code.
func (b *ShardBackend) Apply(r dataset.Rating) (remote.ApplyAck, error) {
	if err := b.w.AddRating(r); err != nil {
		return remote.ApplyAck{}, err
	}
	ds := b.w.IngestStats()
	return remote.ApplyAck{
		Pending: ds.Pending,
		Applied: ds.Applied,
		Folds:   ds.Folds,
		Folded:  ds.Folded,
	}, nil
}

// InvalidateUser implements remote.Backend.
func (b *ShardBackend) InvalidateUser(u dataset.UserID) bool {
	return b.w.InvalidateUserViews(u)
}

// ShardStats implements remote.Backend: the owned shards' slices of
// the replica's cache counters, in owned order.
func (b *ShardBackend) ShardStats() []remote.ShardStats {
	per := b.w.CacheStats().PerShard
	out := make([]remote.ShardStats, 0, len(b.owned))
	for _, sh := range b.owned {
		ps := per[sh]
		out = append(out, remote.ShardStats{
			Shard:         sh,
			RowCache:      ps.RowCache,
			ListStore:     ps.ListStore,
			Neighborhoods: ps.Neighborhoods,
		})
	}
	return out
}
