package core

import (
	"math"

	"repro/internal/stats"
)

// evaluator holds the mutable run state of one GRECA execution: the
// component values seen so far and scratch buffers for bound
// computation. All score evaluation funnels through scoreItem so that
// exact scoring (every component known) and bound scoring (cursor
// intervals for unknown components) share one code path.
type evaluator struct {
	p *Problem

	// aprefSeen[u][i] is the observed apref or NaN.
	aprefSeen [][]float64
	// staticSeen[pair] / driftSeen[t][pair] are observed affinity
	// components or NaN.
	staticSeen []float64
	driftSeen  [][]float64
	// agreementSeen[pair][i] is the observed pairwise agreement or NaN
	// (pairwise disagreement consensus only).
	agreementSeen [][]float64

	// affCache[pair] is the pair's combined affinity interval under
	// the current cursors; recomputed once per check round because it
	// is item-independent.
	affCache []stats.Interval

	// scratch buffers reused across items within one check.
	aprefIv []stats.Interval
	prefIv  []stats.Interval
	driftIv []stats.Interval
}

func newEvaluator(p *Problem) *evaluator {
	ev := &evaluator{p: p}
	ev.aprefSeen = make([][]float64, p.g)
	for u := range ev.aprefSeen {
		row := make([]float64, p.m)
		for i := range row {
			row[i] = math.NaN()
		}
		ev.aprefSeen[u] = row
	}
	if p.useAffinity {
		ev.staticSeen = nanSlice(p.nPairs)
		T := p.in.Agg.NumPeriods()
		ev.driftSeen = make([][]float64, T)
		for t := range ev.driftSeen {
			ev.driftSeen[t] = nanSlice(p.nPairs)
		}
		ev.affCache = make([]stats.Interval, p.nPairs)
		ev.driftIv = make([]stats.Interval, T)
	}
	if p.useAgreement {
		ev.agreementSeen = make([][]float64, p.nPairs)
		for pr := range ev.agreementSeen {
			ev.agreementSeen[pr] = nanSlice(p.m)
		}
	}
	ev.aprefIv = make([]stats.Interval, p.g)
	ev.prefIv = make([]stats.Interval, p.g)
	return ev
}

func nanSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.NaN()
	}
	return s
}

// observe records one consumed entry.
func (ev *evaluator) observe(l *List, e Entry) {
	switch l.Kind {
	case PrefList:
		ev.aprefSeen[l.Owner][e.Key] = e.Value
	case StaticList:
		ev.staticSeen[e.Key] = e.Value
	case DriftList:
		ev.driftSeen[l.Period][e.Key] = e.Value
	case AgreementList:
		ev.agreementSeen[l.Owner][e.Key] = e.Value
	}
}

// refreshAffinity recomputes the per-pair affinity intervals from the
// seen values and current cursors. Called once per check round.
func (ev *evaluator) refreshAffinity() {
	if !ev.p.useAffinity {
		return
	}
	for pr := 0; pr < ev.p.nPairs; pr++ {
		st := ev.componentInterval(ev.staticSeen[pr], ev.p.pairStatic[pr])
		for t := range ev.driftSeen {
			ev.driftIv[t] = ev.componentInterval(ev.driftSeen[t][pr], ev.p.pairDrift[t][pr])
		}
		ev.affCache[pr] = ev.p.in.Agg.Combine(st, ev.driftIv)
	}
}

// refreshAffinityExact fills the affinity cache with exact values
// straight from the input (TA mode, where random accesses resolved
// every affinity component).
func (ev *evaluator) refreshAffinityExact() {
	if !ev.p.useAffinity {
		return
	}
	for pr := 0; pr < ev.p.nPairs; pr++ {
		for t := range ev.driftIv {
			ev.driftIv[t] = stats.Point(ev.p.in.Drift[t][pr])
		}
		ev.affCache[pr] = ev.p.in.Agg.Combine(stats.Point(ev.p.in.Static[pr]), ev.driftIv)
	}
}

// componentInterval returns the point interval for a seen value or the
// [listMin, cursor] interval for an unseen one (the whole-list range
// under the LooseBounds ablation).
func (ev *evaluator) componentInterval(seen float64, l *List) stats.Interval {
	if !math.IsNaN(seen) {
		return stats.Point(seen)
	}
	if ev.p.in.LooseBounds {
		return stats.Interval{Lo: l.Min(), Hi: l.Top()}
	}
	return stats.Interval{Lo: l.Min(), Hi: l.CursorValue()}
}

// scoreItem computes the consensus score interval for item key under
// current knowledge. refreshAffinity must have been called for the
// current cursor state.
func (ev *evaluator) scoreItem(key int) stats.Interval {
	p := ev.p
	for u := 0; u < p.g; u++ {
		ev.aprefIv[u] = ev.componentInterval(ev.aprefSeen[u][key], p.prefList[u])
	}
	return ev.scoreFromAprefs(key)
}

// threshold computes the paper's ComputeTh({E}): the best score any
// entirely unseen item could still achieve, using cursor intervals for
// every preference and agreement component and current knowledge for
// affinities (affinities are item-independent so seen values apply to
// unseen items too).
func (ev *evaluator) threshold() float64 {
	p := ev.p
	for u := 0; u < p.g; u++ {
		l := p.prefList[u]
		ev.aprefIv[u] = stats.Interval{Lo: l.Min(), Hi: l.CursorValue()}
	}
	return ev.scoreFromAprefs(-1).Hi
}

// scoreFromAprefs combines ev.aprefIv with the cached affinity
// intervals into member preferences (pref = apref + rpref, normalized)
// and applies the consensus spec. key identifies the item for
// agreement-list lookups; -1 denotes the virtual unseen item of the
// threshold computation. This inlines preference.Combine to reuse
// scratch buffers inside the hot loop.
func (ev *evaluator) scoreFromAprefs(key int) stats.Interval {
	p := ev.p
	norm := 1 / (1 + float64(p.g-1)*p.in.Agg.MaxAffinity())
	for u := 0; u < p.g; u++ {
		iv := ev.aprefIv[u]
		if p.useAffinity {
			for v := 0; v < p.g; v++ {
				if v == u {
					continue
				}
				aff := ev.affCache[PairIndex(p.g, u, v)]
				iv = iv.Add(aff.Mul(ev.aprefIv[v]))
			}
		}
		ev.prefIv[u] = iv.Scale(norm).Clamp(0, 1)
	}
	if !p.useAgreement {
		return p.in.Spec.Score(ev.prefIv)
	}

	// Pairwise disagreement via agreement lists:
	// F = w1·gpref + w2·(1−dis) = w1·gpref + w2·mean pair agreement.
	gp := p.in.Spec.GroupPrefInterval(ev.prefIv)
	var agLo, agHi float64
	for pr := 0; pr < p.nPairs; pr++ {
		var iv stats.Interval
		l := p.pairAgreement[pr]
		if key >= 0 {
			iv = ev.componentInterval(ev.agreementSeen[pr][key], l)
		} else {
			iv = stats.Interval{Lo: l.Min(), Hi: l.CursorValue()}
		}
		agLo += iv.Lo
		agHi += iv.Hi
	}
	n := float64(p.nPairs)
	ag := stats.Interval{Lo: agLo / n, Hi: agHi / n}
	return gp.Scale(p.in.Spec.W1).Add(ag.Scale(p.in.Spec.W2))
}

// exactAll computes exact scores for all items; every component must
// have been observed (i.e. after a full scan). It reuses the interval
// machinery with degenerate intervals, so exact and bounded scoring
// cannot diverge.
func (ev *evaluator) exactAll() []float64 {
	ev.refreshAffinity()
	out := make([]float64, ev.p.m)
	for i := 0; i < ev.p.m; i++ {
		iv := ev.scoreItem(i)
		out[i] = iv.Lo
	}
	return out
}

// exactScore computes item key's exact consensus score straight from
// the problem input, bypassing the seen-state — this is what a random
// access fetches in TA mode. It funnels through the same interval
// scorer with point inputs so it cannot diverge from bounded scoring.
func (ev *evaluator) exactScore(key int) float64 {
	p := ev.p
	for u := 0; u < p.g; u++ {
		ev.aprefIv[u] = stats.Point(p.in.Apref[u][key])
	}
	if p.useAffinity {
		for pr := 0; pr < p.nPairs; pr++ {
			for t := range ev.driftIv {
				ev.driftIv[t] = stats.Point(p.in.Drift[t][pr])
			}
			ev.affCache[pr] = p.in.Agg.Combine(stats.Point(p.in.Static[pr]), ev.driftIv)
		}
	}
	if !p.useAgreement {
		return ev.scoreFromAprefsExactAgreement(key)
	}
	return ev.scoreFromAprefsExactAgreement(key)
}

// scoreFromAprefsExactAgreement evaluates the consensus with point
// member preferences and, when the pairwise-disagreement path is
// active, exact agreement values recomputed from the input aprefs.
func (ev *evaluator) scoreFromAprefsExactAgreement(key int) float64 {
	p := ev.p
	norm := 1 / (1 + float64(p.g-1)*p.in.Agg.MaxAffinity())
	for u := 0; u < p.g; u++ {
		iv := ev.aprefIv[u]
		if p.useAffinity {
			for v := 0; v < p.g; v++ {
				if v == u {
					continue
				}
				iv = iv.Add(ev.affCache[PairIndex(p.g, u, v)].Mul(ev.aprefIv[v]))
			}
		}
		ev.prefIv[u] = iv.Scale(norm).Clamp(0, 1)
	}
	if !p.useAgreement {
		return p.in.Spec.Score(ev.prefIv).Lo
	}
	gp := p.in.Spec.GroupPrefInterval(ev.prefIv)
	var ag float64
	for i := 0; i < p.g; i++ {
		for j := i + 1; j < p.g; j++ {
			d := p.in.Apref[i][key] - p.in.Apref[j][key]
			if d < 0 {
				d = -d
			}
			ag += 1 - d
		}
	}
	ag /= float64(p.nPairs)
	return p.in.Spec.W1*gp.Lo + p.in.Spec.W2*ag
}

// fullyKnown reports whether item key's score interval is a point:
// all its apref components and (if used) all affinity components have
// been observed.
func (ev *evaluator) fullyKnown(key int) bool {
	for u := 0; u < ev.p.g; u++ {
		if math.IsNaN(ev.aprefSeen[u][key]) {
			return false
		}
	}
	if ev.p.useAgreement {
		for pr := 0; pr < ev.p.nPairs; pr++ {
			if math.IsNaN(ev.agreementSeen[pr][key]) {
				return false
			}
		}
	}
	return ev.affinityFullyKnown()
}

func (ev *evaluator) affinityFullyKnown() bool {
	if !ev.p.useAffinity {
		return true
	}
	for pr := 0; pr < ev.p.nPairs; pr++ {
		if math.IsNaN(ev.staticSeen[pr]) {
			return false
		}
		for t := range ev.driftSeen {
			if math.IsNaN(ev.driftSeen[t][pr]) {
				return false
			}
		}
	}
	return true
}
