package consensus

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func points(xs ...float64) []stats.Interval {
	out := make([]stats.Interval, len(xs))
	for i, x := range xs {
		out[i] = stats.Point(x)
	}
	return out
}

func TestSpecConstructorsValidate(t *testing.T) {
	for _, s := range []Spec{AP(), MO(), PD(0.8), PD(0.2), VD(0.5)} {
		if err := s.Validate(); err != nil {
			t.Errorf("%v invalid: %v", s, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Pref: GroupPref(9)},
		{Pref: Average, Dis: Disagreement(9)},
		{Pref: Average, Dis: NoDisagreement, W1: 0},
		{Pref: Average, Dis: PairwiseDisagreement, W1: 0.5, W2: 0.6},
		{Pref: Average, Dis: PairwiseDisagreement, W1: -0.2, W2: 1.2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("accepted %+v", s)
		}
	}
}

func TestAveragePreferenceExact(t *testing.T) {
	got := AP().ScoreExact([]float64{0.2, 0.4, 0.9})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AP = %v, want 0.5", got)
	}
}

func TestLeastMiseryExact(t *testing.T) {
	got := MO().ScoreExact([]float64{0.2, 0.4, 0.9})
	if got != 0.2 {
		t.Errorf("MO = %v, want 0.2", got)
	}
}

func TestPairwiseDisagreementExact(t *testing.T) {
	// prefs {0.2, 0.4}: gpref = 0.3, dis = 0.2.
	// F = 0.5*0.3 + 0.5*(1-0.2) = 0.55.
	got := PD(0.5).ScoreExact([]float64{0.2, 0.4})
	if math.Abs(got-0.55) > 1e-12 {
		t.Errorf("PD = %v, want 0.55", got)
	}
}

func TestVarianceDisagreementExact(t *testing.T) {
	// prefs {0.2, 0.4}: variance = 0.01.
	// F = 0.5*0.3 + 0.5*0.99 = 0.645.
	got := VD(0.5).ScoreExact([]float64{0.2, 0.4})
	if math.Abs(got-0.645) > 1e-9 {
		t.Errorf("VD = %v, want 0.645", got)
	}
}

func TestSingleMemberDegenerates(t *testing.T) {
	for _, s := range []Spec{AP(), MO(), PD(0.3)} {
		got := s.Score(points(0.7))
		switch s.Dis {
		case NoDisagreement:
			if got.Lo != 0.7 {
				t.Errorf("%v single member = %v", s, got)
			}
		default:
			// dis = 0 → F = w1*0.7 + w2.
			want := s.W1*0.7 + s.W2
			if math.Abs(got.Lo-want) > 1e-12 {
				t.Errorf("%v single member = %v, want %v", s, got, want)
			}
		}
	}
}

func TestEmptyPrefs(t *testing.T) {
	if got := AP().Score(nil); got.Lo != 0 || got.Hi != 0 {
		t.Errorf("empty AP = %v", got)
	}
}

// TestQuickScoreSoundness: interval Score encloses ScoreExact for
// points sampled within the member intervals.
func TestQuickScoreSoundness(t *testing.T) {
	specs := []Spec{AP(), MO(), PD(0.8), PD(0.2), VD(0.4)}
	f := func(raw [6]float64, widths [6]float64, pick [6]float64) bool {
		ivs := make([]stats.Interval, 6)
		pts := make([]float64, 6)
		for i := range ivs {
			lo := math.Abs(math.Mod(raw[i], 1))
			w := math.Abs(math.Mod(widths[i], 1)) * (1 - lo)
			ivs[i] = stats.Interval{Lo: lo, Hi: lo + w}
			frac := math.Abs(math.Mod(pick[i], 1))
			pts[i] = lo + frac*w
		}
		for _, s := range specs {
			enclosure := s.Score(ivs)
			exact := s.ScoreExact(pts)
			if exact < enclosure.Lo-1e-9 || exact > enclosure.Hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestQuickMonotonicity is Lemma 1's property for the engine's
// aggregations: raising any single member preference cannot lower the
// group preference component.
func TestQuickMonotonicity(t *testing.T) {
	f := func(raw [5]float64, idx uint8, delta float64) bool {
		prefs := make([]float64, 5)
		for i := range prefs {
			prefs[i] = math.Abs(math.Mod(raw[i], 1))
		}
		i := int(idx) % 5
		d := math.Abs(math.Mod(delta, 1)) * (1 - prefs[i])
		bumped := append([]float64(nil), prefs...)
		bumped[i] += d
		for _, s := range []Spec{AP(), MO()} {
			before := s.ScoreExact(prefs)
			after := s.ScoreExact(bumped)
			if after < before-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestStringLabels(t *testing.T) {
	if AP().String() != "AP" || MO().String() != "MO" {
		t.Errorf("labels wrong: %v %v", AP(), MO())
	}
	if PD(0.8).String() != "PD(w1=0.8)" {
		t.Errorf("PD label: %v", PD(0.8))
	}
	if Average.String() != "AP" || LeastMisery.String() != "MO" {
		t.Errorf("GroupPref labels wrong")
	}
	if PairwiseDisagreement.String() != "pairwise" || VarianceDisagreement.String() != "variance" {
		t.Errorf("Disagreement labels wrong")
	}
}

func TestDisagreementIntervalExactForPoints(t *testing.T) {
	pd := PD(0.5)
	iv := pd.DisagreementInterval(points(0.1, 0.5, 0.9))
	// Pairs: |0.1-0.5| + |0.1-0.9| + |0.5-0.9| = 1.6, × 2/6 = 0.5333…
	want := 1.6 / 3
	if math.Abs(iv.Lo-want) > 1e-12 || math.Abs(iv.Hi-want) > 1e-12 {
		t.Errorf("dis = %v, want point %v", iv, want)
	}
}

func TestVarianceIntervalNonNegative(t *testing.T) {
	vd := VD(0.5)
	iv := vd.DisagreementInterval([]stats.Interval{{Lo: 0.1, Hi: 0.4}, {Lo: 0.2, Hi: 0.9}})
	if iv.Lo < 0 {
		t.Errorf("variance interval has negative Lo: %v", iv)
	}
}
