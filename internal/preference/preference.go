// Package preference implements the paper's user-item preference
// model (§2.2): the overall preference of user u for item i in group G
// is the absolute preference plus the affinity-weighted relative
// preference,
//
//	pref(u,i,G,p) = apref(u,i) + rpref(u,i,G,p)
//	rpref(u,i,G,p) = Σ_{u'≠u∈G} aff(u,u',p) · apref(u',i)
//
// Absolute preferences here are normalized to [0,1] (the engine
// divides 1..5 CF predictions by 5) and the combined preference is
// normalized by 1 + (|G|−1)·affMax so that scores stay in [0,1] and
// are comparable across group sizes — the paper's worked example
// "ignores normalization and final averaging"; we make it explicit.
//
// Functions operate on intervals so GRECA can evaluate the same model
// with partially known inputs; point intervals recover exact values.
package preference

import (
	"fmt"

	"repro/internal/stats"
)

// AffinityFunc returns the affinity interval between group members at
// positions i and j (i ≠ j) of the group slice. It must be symmetric.
type AffinityFunc func(i, j int) stats.Interval

// Combine computes the per-member overall preference intervals for a
// single item. aprefs[i] is member i's absolute preference interval in
// [0,1]; aff yields pairwise affinity intervals whose true values lie
// in [affMin, affMax]. affMax must be positive; affMin may be negative
// (decaying drift), in which case resulting preferences are clamped at
// 0 from below after normalization.
//
// The normalizer is 1 + (g−1)·max(affMax, 0) — the largest achievable
// unnormalized preference — so results lie in [0,1].
func Combine(aprefs []stats.Interval, aff AffinityFunc, affMax float64) []stats.Interval {
	g := len(aprefs)
	if g == 0 {
		return nil
	}
	if affMax <= 0 {
		panic(fmt.Sprintf("preference: affMax must be positive, got %g", affMax))
	}
	norm := 1 + float64(g-1)*affMax
	out := make([]stats.Interval, g)
	for i := 0; i < g; i++ {
		iv := aprefs[i]
		for j := 0; j < g; j++ {
			if j == i {
				continue
			}
			iv = iv.Add(aff(i, j).Mul(aprefs[j]))
		}
		iv = iv.Scale(1 / norm)
		// Negative drift can push a bound below zero; preferences are
		// non-negative by construction of the model, so clamp.
		out[i] = iv.Clamp(0, 1)
	}
	return out
}

// CombineExact is the point-value form of Combine.
func CombineExact(aprefs []float64, aff func(i, j int) float64, affMax float64) []float64 {
	ivs := make([]stats.Interval, len(aprefs))
	for i, a := range aprefs {
		ivs[i] = stats.Point(a)
	}
	res := Combine(ivs, func(i, j int) stats.Interval { return stats.Point(aff(i, j)) }, affMax)
	out := make([]float64, len(res))
	for i, iv := range res {
		out[i] = iv.Lo
	}
	return out
}

// AffinityAgnostic is the AffinityFunc of the paper's affinity-
// agnostic baseline: all pairwise affinities are zero, so pref
// collapses to apref.
func AffinityAgnostic(i, j int) stats.Interval { return stats.Point(0) }
