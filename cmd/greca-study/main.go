// Command greca-study runs the paper's §4.1 quality study end to end
// against the simulated judges and prints the per-group evaluation
// detail: every study group's composition (size, cohesiveness,
// affinity band) and the 0..5-star verdict each recommendation variant
// received. This is the drill-down behind Figures 1-3, which report
// only per-characteristic aggregates.
//
// Usage:
//
//	greca-study [-seed N] [-replicates R]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/groups"
	"repro/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("greca-study: ")

	var (
		seed       = flag.Int64("seed", 1, "world and study seed")
		replicates = flag.Int("replicates", 1, "replicates of the 8-group design")
	)
	flag.Parse()
	if *replicates < 1 {
		log.Fatalf("replicates must be positive")
	}

	world, err := repro.NewWorld(repro.QuickConfig())
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	st, err := study.New(world, *seed)
	if err != nil {
		log.Fatalf("building study: %v", err)
	}

	var gs []groups.Group
	for r := 0; r < *replicates; r++ {
		gs = append(gs, st.StudyGroups(*seed+int64(r))...)
	}
	fmt.Printf("# Quality Study Detail (seed %d, %d groups, %d-item pool)\n\n",
		*seed, len(gs), len(st.CandidateItems()))

	details, err := st.Details(gs)
	if err != nil {
		log.Fatalf("evaluating: %v", err)
	}
	if err := study.WriteDetails(os.Stdout, details); err != nil {
		log.Fatalf("rendering: %v", err)
	}

	// Aggregate footer: mean verdict per variant, as in Figure 1.
	fmt.Printf("\nmean verdicts (stars of 5): ")
	for _, v := range study.Variants() {
		var sum float64
		for _, d := range details {
			sum += d.Verdicts[v]
		}
		fmt.Printf("%v=%.2f  ", v, sum/float64(len(details)))
	}
	fmt.Println()
}
