package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, s *Store, r Rating) {
	t.Helper()
	if err := s.Add(r); err != nil {
		t.Fatalf("Add(%+v): %v", r, err)
	}
}

func smallStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	mustAdd(t, s, Rating{User: 1, Item: 10, Value: 5, Time: 100})
	mustAdd(t, s, Rating{User: 1, Item: 20, Value: 3, Time: 101})
	mustAdd(t, s, Rating{User: 2, Item: 10, Value: 4, Time: 102})
	mustAdd(t, s, Rating{User: 2, Item: 30, Value: 1, Time: 103})
	mustAdd(t, s, Rating{User: 3, Item: 10, Value: 2, Time: 104})
	s.Freeze()
	return s
}

func TestStoreBasics(t *testing.T) {
	s := smallStore(t)
	if got := s.NumRatings(); got != 5 {
		t.Errorf("NumRatings = %d, want 5", got)
	}
	if got := len(s.Users()); got != 3 {
		t.Errorf("Users = %d, want 3", got)
	}
	if got := len(s.Items()); got != 3 {
		t.Errorf("Items = %d, want 3", got)
	}
	if v, ok := s.Value(1, 20); !ok || v != 3 {
		t.Errorf("Value(1,20) = %v,%v", v, ok)
	}
	if _, ok := s.Value(1, 30); ok {
		t.Errorf("Value(1,30) should not exist")
	}
	if !s.HasRated(3, 10) || s.HasRated(3, 20) {
		t.Errorf("HasRated wrong")
	}
	st := s.Stats()
	if st.Users != 3 || st.Items != 3 || st.Ratings != 5 {
		t.Errorf("Stats = %+v", st)
	}
	if st.MeanRating != 3 {
		t.Errorf("MeanRating = %v, want 3", st.MeanRating)
	}
}

func TestStoreRejectsBadRating(t *testing.T) {
	s := NewStore()
	if err := s.Add(Rating{User: 1, Item: 1, Value: 0}); err == nil {
		t.Errorf("Add accepted rating 0")
	}
	if err := s.Add(Rating{User: 1, Item: 1, Value: 5.5}); err == nil {
		t.Errorf("Add accepted rating 5.5")
	}
}

func TestStoreFrozenPanics(t *testing.T) {
	s := smallStore(t)
	defer func() {
		if recover() == nil {
			t.Errorf("Add on frozen store did not panic")
		}
	}()
	_ = s.Add(Rating{User: 9, Item: 9, Value: 3})
}

func TestStoreUnfrozenQueryPanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Errorf("Users() on unfrozen store did not panic")
		}
	}()
	s.Users()
}

func TestItemPopularityAndSets(t *testing.T) {
	s := smallStore(t)
	pop := s.ItemPopularity()
	if pop[0] != 10 {
		t.Errorf("most popular = %d, want 10", pop[0])
	}
	top2 := s.PopularSet(2)
	if len(top2) != 2 || top2[0] != 10 {
		t.Errorf("PopularSet = %v", top2)
	}
	if got := s.PopularSet(99); len(got) != 3 {
		t.Errorf("oversized PopularSet = %v", got)
	}
	// Item 10 has ratings {5,4,2}: variance > 0; items 20, 30 single
	// ratings: variance 0.
	if v := s.ItemRatingVariance(10); v <= 0 {
		t.Errorf("variance(10) = %v", v)
	}
	div := s.DiversitySet(1, 3)
	if len(div) != 1 || div[0] != 10 {
		t.Errorf("DiversitySet = %v", div)
	}
}

func TestMovieLensRoundTrip(t *testing.T) {
	s := smallStore(t)
	var buf bytes.Buffer
	if err := WriteMovieLensRatings(&buf, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := LoadMovieLensRatings(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.NumRatings() != s.NumRatings() {
		t.Fatalf("round trip lost ratings: %d vs %d", loaded.NumRatings(), s.NumRatings())
	}
	for _, u := range s.Users() {
		for _, r := range s.ByUser(u) {
			v, ok := loaded.Value(u, r.Item)
			if !ok || v != r.Value {
				t.Errorf("round trip mismatch for (%d,%d): %v,%v", u, r.Item, v, ok)
			}
		}
	}
}

func TestLoadMovieLensRejectsMalformed(t *testing.T) {
	cases := []string{
		"1::2::3",           // too few fields
		"a::2::3::4",        // bad user
		"1::b::3::4",        // bad item
		"1::2::x::4",        // bad rating
		"1::2::3::y",        // bad timestamp
		"1::2::9::4",        // out-of-range rating
		"1::2::3::4::extra", // too many fields
	}
	for _, line := range cases {
		if _, err := LoadMovieLensRatings(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("loader accepted %q", line)
		}
	}
	// Blank lines are fine.
	if _, err := LoadMovieLensRatings(strings.NewReader("\n1::2::3::4\n\n")); err != nil {
		t.Errorf("loader rejected blank lines: %v", err)
	}
}

func TestSynthConfigValidate(t *testing.T) {
	good := DefaultSynthConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*SynthConfig){
		func(c *SynthConfig) { c.Users = 0 },
		func(c *SynthConfig) { c.Items = 0 },
		func(c *SynthConfig) { c.TargetRatings = 0 },
		func(c *SynthConfig) { c.TargetRatings = c.Users*c.Items + 1 },
		func(c *SynthConfig) { c.Genres = 0 },
		func(c *SynthConfig) { c.Clusters = 0 },
		func(c *SynthConfig) { c.PopularitySkew = 0 },
		func(c *SynthConfig) { c.RatingNoise = -1 },
		func(c *SynthConfig) { c.ParticipantUsers = -1 },
		func(c *SynthConfig) { c.ParticipantUsers = c.Users + 1 },
		func(c *SynthConfig) { c.ParticipantUsers = 1; c.ParticipantMinRatings = 0 },
		func(c *SynthConfig) { c.ParticipantUsers = 1; c.ParticipantMinRatings = 5; c.ParticipantMaxRatings = 4 },
		func(c *SynthConfig) {
			c.ParticipantUsers = 1
			c.ParticipantMinRatings = 1
			c.ParticipantMaxRatings = c.Items + 1
		},
		func(c *SynthConfig) {
			c.ParticipantUsers = 1
			c.ParticipantMinRatings = 1
			c.ParticipantMaxRatings = 10
			c.ParticipantPoolSize = 5
		},
	}
	for i, mutate := range mutations {
		cfg := DefaultSynthConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateMarginals(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Users = 200
	cfg.Items = 500
	cfg.TargetRatings = 8000
	sy, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	st := sy.Store.Stats()
	if st.Users != 200 {
		t.Errorf("users = %d, want 200", st.Users)
	}
	if st.Items > 500 {
		t.Errorf("items = %d beyond catalog", st.Items)
	}
	// The count adjuster targets the exact rating count.
	if st.Ratings != 8000 {
		t.Errorf("ratings = %d, want 8000", st.Ratings)
	}
	if st.MeanRating < 2 || st.MeanRating > 4.5 {
		t.Errorf("mean rating %v implausible", st.MeanRating)
	}
	// Ratings must be integers 1..5.
	for _, u := range sy.Store.Users() {
		for _, r := range sy.Store.ByUser(u) {
			if r.Value != float64(int(r.Value)) || r.Value < 1 || r.Value > 5 {
				t.Fatalf("non-integer or out-of-range rating %v", r.Value)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Users = 50
	cfg.Items = 100
	cfg.TargetRatings = 1000
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := WriteMovieLensRatings(&bufA, a.Store); err != nil {
		t.Fatal(err)
	}
	if err := WriteMovieLensRatings(&bufB, b.Store); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("same seed produced different datasets")
	}
}

func TestGenerateParticipants(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Users = 100
	cfg.Items = 400
	cfg.TargetRatings = 8000
	cfg.ParticipantUsers = 20
	cfg.ParticipantMinRatings = 10
	cfg.ParticipantMaxRatings = 20
	cfg.ParticipantPoolSize = 40
	cfg.ParticipantExtraMean = 30
	sy, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every participant rated at least MinRatings items within the
	// pool (the pool is the top-PoolSize popularity ranks, which we
	// recover as the most-rated items).
	pool := map[ItemID]bool{}
	for _, it := range sy.Store.PopularSet(cfg.ParticipantPoolSize) {
		pool[it] = true
	}
	for u := 0; u < cfg.ParticipantUsers; u++ {
		inPool := 0
		for _, r := range sy.Store.ByUser(UserID(u)) {
			if pool[r.Item] {
				inPool++
			}
		}
		if inPool < cfg.ParticipantMinRatings/2 {
			t.Errorf("participant %d has only %d pool ratings", u, inPool)
		}
		if total := len(sy.Store.ByUser(UserID(u))); total < cfg.ParticipantMinRatings {
			t.Errorf("participant %d has %d ratings total", u, total)
		}
	}
}

func TestLatentScoreBounds(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Users = 30
	cfg.Items = 60
	cfg.TargetRatings = 500
	sy, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(u, it uint8) bool {
		s := sy.LatentScore(UserID(int(u)%cfg.Users), ItemID(int(it)%cfg.Items))
		return s >= 1 && s <= 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjustCounts(t *testing.T) {
	counts := []int{5, 5, 5}
	adjustCounts(counts, 4, 10)
	if counts[0]+counts[1]+counts[2] != 19 {
		t.Errorf("positive adjust: %v", counts)
	}
	adjustCounts(counts, -4, 10)
	if counts[0]+counts[1]+counts[2] != 15 {
		t.Errorf("negative adjust: %v", counts)
	}
	// Saturating at bounds must not loop forever.
	capped := []int{10, 10}
	adjustCounts(capped, 5, 10)
	if capped[0] != 10 || capped[1] != 10 {
		t.Errorf("saturated adjust changed counts: %v", capped)
	}
}

func TestRatedBitsetsMatchValueLookups(t *testing.T) {
	s := NewStore()
	ratings := []Rating{
		{User: 0, Item: 0, Value: 5},
		{User: 0, Item: 63, Value: 4}, // word boundary
		{User: 0, Item: 64, Value: 3},
		{User: 1, Item: 2, Value: 2},
		{User: 2, Item: 200, Value: 1},
	}
	for _, r := range ratings {
		if err := s.Add(r); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	s.Freeze()
	for u := UserID(0); u < 4; u++ {
		for it := ItemID(-1); it <= 201; it++ {
			_, want := s.Value(u, it)
			if got := s.HasRated(u, it); got != want {
				t.Errorf("HasRated(%d,%d) = %v, Value says %v", u, it, got, want)
			}
		}
	}
	mask := s.GroupRatedMask([]UserID{0, 2})
	if mask == nil {
		t.Fatal("bitsets unexpectedly disabled for a dense store")
	}
	for it := ItemID(-1); it <= 201; it++ {
		_, r0 := s.Value(0, it)
		_, r2 := s.Value(2, it)
		if got := mask.Has(it); got != (r0 || r2) {
			t.Errorf("mask.Has(%d) = %v, want %v", it, got, r0 || r2)
		}
	}
	// Absent users contribute nothing; unknown users are fine.
	if got := s.GroupRatedMask([]UserID{99}); got == nil || got.Has(0) {
		t.Errorf("ghost-user mask should be empty, got %v", got)
	}
}

func TestBitsetsDisabledForAdversarialIDs(t *testing.T) {
	neg := NewStore()
	if err := neg.Add(Rating{User: 0, Item: -5, Value: 3}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	neg.Freeze()
	if neg.GroupRatedMask([]UserID{0}) != nil {
		t.Errorf("negative item IDs should disable bitsets")
	}
	if !neg.HasRated(0, -5) {
		t.Errorf("fallback HasRated lost the negative-ID rating")
	}

	huge := NewStore()
	if err := huge.Add(Rating{User: 0, Item: 1 << 40, Value: 3}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	huge.Freeze()
	if huge.GroupRatedMask([]UserID{0}) != nil {
		t.Errorf("huge item IDs should disable bitsets")
	}
	if !huge.HasRated(0, 1<<40) {
		t.Errorf("fallback HasRated lost the huge-ID rating")
	}
}

func TestPopularityRankedSharedAndStable(t *testing.T) {
	s := NewStore()
	for i, n := range []int{1, 3, 2} { // item 1 most popular, then 2, then 0
		for u := 0; u < n; u++ {
			if err := s.Add(Rating{User: UserID(u), Item: ItemID(i), Value: 4}); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
	}
	s.Freeze()
	want := []ItemID{1, 2, 0}
	shared := s.PopularityRanked()
	copied := s.ItemPopularity()
	for i := range want {
		if shared[i] != want[i] || copied[i] != want[i] {
			t.Fatalf("popularity = %v / %v, want %v", shared, copied, want)
		}
	}
	copied[0] = 99 // mutating the copy must not corrupt the shared ranking
	if s.PopularityRanked()[0] != 1 {
		t.Errorf("ItemPopularity copy aliased the shared ranking")
	}
}
