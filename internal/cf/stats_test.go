package cf

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

// statsStore builds a small frozen store shared by the counter tests.
func statsStore(t testing.TB) *dataset.Store {
	t.Helper()
	cfg := dataset.DefaultSynthConfig()
	cfg.Users = 40
	cfg.Items = 60
	cfg.TargetRatings = 1200
	sy, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("generating store: %v", err)
	}
	return sy.Store
}

// TestCachedSourceCounters drives a deterministic hit/miss sequence
// through the row cache and asserts the exact counter values at every
// step.
func TestCachedSourceCounters(t *testing.T) {
	store := statsStore(t)
	pred, err := NewPredictor(store, 10)
	if err != nil {
		t.Fatalf("building predictor: %v", err)
	}
	cs := NewCachedSource(pred, 64)

	users := store.Users()
	items := store.Items()
	itemsA := items[:20]
	itemsB := items[20:40]

	check := func(step string, hits, misses, evictions uint64, size int) {
		t.Helper()
		got := cs.Stats()
		want := CacheStats{Hits: hits, Misses: misses, Evictions: evictions, Size: size}
		if got != want {
			t.Fatalf("%s: stats = %+v, want %+v", step, got, want)
		}
	}

	check("initial", 0, 0, 0, 0)

	cs.PredictBatch(users[0], itemsA)
	check("first row", 0, 1, 0, 1)

	cs.PredictBatch(users[0], itemsA)
	cs.PredictBatch(users[0], itemsA)
	check("two hits on same row", 2, 1, 0, 1)

	cs.PredictBatch(users[0], itemsB) // same user, new candidate set
	check("new candidate set misses", 2, 2, 0, 2)

	cs.PredictBatch(users[1], itemsA) // new user, old candidate set
	check("new user misses", 2, 3, 0, 3)

	cs.PredictBatch(users[1], itemsA)
	cs.PredictBatch(users[0], itemsB)
	check("both rows hit", 4, 3, 0, 3)

	if hr := cs.Stats().HitRate(); hr != 4.0/7.0 {
		t.Errorf("hit rate = %v, want %v", hr, 4.0/7.0)
	}
}

// TestCachedSourceEvictionCounters fills a tiny cache past its bound
// and asserts evictions are counted and the size stays bounded.
func TestCachedSourceEvictionCounters(t *testing.T) {
	store := statsStore(t)
	pred, err := NewPredictor(store, 10)
	if err != nil {
		t.Fatalf("building predictor: %v", err)
	}
	// cap 16 spread over 16 shards = 1 row per shard: every second
	// insert into the same shard evicts.
	cs := NewCachedSource(pred, 16)

	users := store.Users()
	items := store.Items()
	const n = 40
	for i := 0; i < n; i++ {
		// Distinct candidate sets so every call is a miss.
		cs.PredictBatch(users[i%len(users)], items[i%20:i%20+10])
	}
	st := cs.Stats()
	if st.Misses != n {
		t.Errorf("misses = %d, want %d (every candidate set distinct)", st.Misses, n)
	}
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0", st.Hits)
	}
	if st.Evictions == 0 {
		t.Error("no evictions counted despite cap pressure")
	}
	if st.Size > 16 {
		t.Errorf("size %d exceeds cap 16", st.Size)
	}
	// Conservation: every miss either still resides in the cache or
	// was evicted.
	if st.Misses != uint64(st.Size)+st.Evictions {
		t.Errorf("misses %d != size %d + evictions %d", st.Misses, st.Size, st.Evictions)
	}
}

// TestPredictorCounters asserts the user-based neighborhood cache
// counts exactly one miss per distinct user and hits thereafter, and
// that the time-weighted wrapper reports the same (shared) cache.
func TestPredictorCounters(t *testing.T) {
	store := statsStore(t)
	pred, err := NewPredictor(store, 10)
	if err != nil {
		t.Fatalf("building predictor: %v", err)
	}
	users := store.Users()

	pred.Neighbors(users[0])
	pred.Neighbors(users[0])
	pred.Neighbors(users[1])
	pred.Neighbors(users[0])

	got := pred.Stats()
	want := CacheStats{Hits: 2, Misses: 2, Evictions: 0, Size: 2}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}

	tw, err := NewTimeWeightedPredictor(pred, 0)
	if err != nil {
		t.Fatalf("building time-weighted predictor: %v", err)
	}
	if tw.Stats() != pred.Stats() {
		t.Errorf("time-weighted stats %+v diverge from base %+v", tw.Stats(), pred.Stats())
	}
}

// TestItemPredictorCounters asserts the item-neighborhood cache counts
// per distinct item.
func TestItemPredictorCounters(t *testing.T) {
	store := statsStore(t)
	ip, err := NewItemPredictor(store, 10)
	if err != nil {
		t.Fatalf("building item predictor: %v", err)
	}
	users := store.Users()
	items := store.Items()

	// A batch over 5 candidates resolves each unrated candidate's
	// neighborhood once (rated candidates short-circuit); a second
	// identical batch hits for every neighborhood the first resolved.
	ip.PredictBatch(users[0], items[:5])
	first := ip.Stats()
	if first.Hits != 0 {
		t.Fatalf("hits after first batch = %d, want 0", first.Hits)
	}
	if first.Misses != uint64(first.Size) {
		t.Fatalf("misses %d != cached neighborhoods %d", first.Misses, first.Size)
	}
	ip.PredictBatch(users[0], items[:5])
	second := ip.Stats()
	if second.Misses != first.Misses {
		t.Errorf("second identical batch added misses: %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits != first.Misses {
		t.Errorf("second batch hits = %d, want %d", second.Hits, first.Misses)
	}
}

// TestCacheCountersRace hammers a small cache from many goroutines;
// with -race this proves the counters are data-race free, and the
// totals must still conserve (hits + misses == lookups).
func TestCacheCountersRace(t *testing.T) {
	store := statsStore(t)
	pred, err := NewPredictor(store, 10)
	if err != nil {
		t.Fatalf("building predictor: %v", err)
	}
	cs := NewCachedSource(pred, 8) // tiny: constant eviction churn
	users := store.Users()
	items := store.Items()

	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				u := users[(w+r)%len(users)]
				off := (w * r) % 30
				cs.PredictBatch(u, items[off:off+8])
				pred.Neighbors(u)
				_ = cs.Stats()
				_ = pred.Stats()
			}
		}(w)
	}
	wg.Wait()

	st := cs.Stats()
	if st.Hits+st.Misses != workers*rounds {
		t.Errorf("row cache lookups %d != %d submitted", st.Hits+st.Misses, workers*rounds)
	}
	ps := pred.Stats()
	if ps.Hits+ps.Misses < workers*rounds {
		// PredictBatch also resolves neighborhoods on row misses, so
		// the total is at least the explicit Neighbors calls.
		t.Errorf("neighborhood lookups %d < %d explicit calls", ps.Hits+ps.Misses, workers*rounds)
	}
	if ps.Size > len(users) {
		t.Errorf("neighborhood cache size %d exceeds population %d", ps.Size, len(users))
	}
}
