// Package core implements GRECA (Group Recommendation with temporal
// Affinities), the paper's instance-optimal top-k algorithm (§3), plus
// the baselines it is evaluated against. The algorithm consumes
// descending-sorted lists — per-member absolute preference lists,
// static affinity lists and one periodic-drift affinity list per time
// period — using sequential accesses only (NRA style), maintains
// interval bounds for every encountered item, and terminates early via
// the paper's global-threshold and buffer conditions.
package core

import (
	"fmt"
	"sort"
)

// ListKind distinguishes the three list families GRECA scans.
type ListKind int

const (
	// PrefList holds (item, apref) entries of one group member.
	PrefList ListKind = iota
	// StaticList holds (pair, affS) entries.
	StaticList
	// DriftList holds (pair, periodic drift) entries for one period.
	DriftList
	// AgreementList holds (item, 1−|apref_u − apref_v|) entries of one
	// member pair — the paper's pair-wise disagreement lists (Lemma 1,
	// following its reference [3]) recast as descending agreement so
	// the same cursor machinery applies: unseen items have agreement
	// at most the cursor, i.e. disagreement at least 1−cursor, which
	// is what lets disagreement-heavy consensus functions (PD V2)
	// terminate quickly.
	AgreementList
)

// String names the kind for diagnostics.
func (k ListKind) String() string {
	switch k {
	case PrefList:
		return "pref"
	case StaticList:
		return "static"
	case DriftList:
		return "drift"
	case AgreementList:
		return "agreement"
	default:
		return fmt.Sprintf("ListKind(%d)", int(k))
	}
}

// Entry is one list element: Key is an item index for PrefList or a
// pair index for affinity lists; Value is the sorted score.
type Entry struct {
	Key   int
	Value float64
}

// List is one descending-sorted input list with a sequential-access
// cursor. MinValue and the first entry's value are list metadata
// (available without accesses, like any precomputed index statistic);
// everything else costs one sequential access per entry.
type List struct {
	Kind ListKind
	// Owner is the group-member index the list belongs to (the
	// paper's per-user partitioning of preference and affinity lists).
	Owner int
	// Period is the period index for DriftList (-1 otherwise).
	Period int
	// Entries are sorted by descending Value (ties by ascending Key
	// for determinism).
	Entries []Entry
	// MinValue is the smallest value in the list, used as the lower
	// bound for unseen entries.
	MinValue float64

	pos int // number of entries consumed
}

// SortCanonical orders entries by descending Value with ascending-Key
// ties — the canonical order of every list in this package, and the
// order SortedView entries and MemberView patches must arrive in.
func SortCanonical(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value > entries[j].Value
		}
		return entries[i].Key < entries[j].Key
	})
}

// sortEntries is the internal alias of SortCanonical.
func sortEntries(entries []Entry) { SortCanonical(entries) }

// newList sorts entries descending and fills metadata.
func newList(kind ListKind, owner, period int, entries []Entry) *List {
	sortEntries(entries)
	return presortedList(kind, owner, period, entries)
}

// presortedList wraps entries already in canonical order (descending
// Value, ascending-Key ties) without re-sorting — the merge path's
// constructor.
func presortedList(kind ListKind, owner, period int, entries []Entry) *List {
	l := &List{Kind: kind, Owner: owner, Period: period, Entries: entries}
	if len(entries) > 0 {
		l.MinValue = entries[len(entries)-1].Value
	}
	return l
}

// Exhausted reports whether every entry has been consumed.
func (l *List) Exhausted() bool { return l.pos >= len(l.Entries) }

// Next consumes and returns the next entry; ok is false when the list
// is exhausted. Each successful Next is one sequential access.
func (l *List) Next() (Entry, bool) {
	if l.Exhausted() {
		return Entry{}, false
	}
	e := l.Entries[l.pos]
	l.pos++
	return e, true
}

// CursorValue is the upper bound for any unseen entry in the list: the
// value of the most recently read entry, or the list maximum before
// the first read (sorted-list metadata).
func (l *List) CursorValue() float64 {
	if len(l.Entries) == 0 {
		return 0
	}
	if l.pos == 0 {
		return l.Entries[0].Value
	}
	return l.Entries[l.pos-1].Value
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.Entries) }

// Pos returns the number of consumed entries.
func (l *List) Pos() int { return l.pos }

// reset rewinds the cursor so the same problem can be re-run.
func (l *List) reset() { l.pos = 0 }

// PairIndex maps member-index pairs (i<j) of a group of size g onto
// the dense range [0, g(g-1)/2). This is the canonical ordering of all
// pairwise affinity storage in the engine.
func PairIndex(g, i, j int) int {
	if i == j || i < 0 || j < 0 || i >= g || j >= g {
		panic(fmt.Sprintf("core: bad pair (%d,%d) for group size %d", i, j, g))
	}
	if i > j {
		i, j = j, i
	}
	return i*(2*g-i-1)/2 + (j - i - 1)
}

// NumPairs returns g(g-1)/2.
func NumPairs(g int) int { return g * (g - 1) / 2 }

// PairMembers inverts PairIndex.
func PairMembers(g, idx int) (int, int) {
	if idx < 0 || idx >= NumPairs(g) {
		panic(fmt.Sprintf("core: pair index %d outside [0,%d)", idx, NumPairs(g)))
	}
	for i := 0; i < g-1; i++ {
		rowLen := g - i - 1
		if idx < rowLen {
			return i, i + 1 + idx
		}
		idx -= rowLen
	}
	panic("core: unreachable in PairMembers")
}
