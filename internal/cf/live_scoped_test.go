package cf

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// scopedStore is the hand-built fixture of the scoped-invalidation
// tests, with fully controlled co-rating structure:
//
//	u0 rates {1, 2}         — the rater in most scenarios
//	u1 rates {1, 3}         — co-rates item 1 with u0
//	u2 rates {2, 4}         — co-rates item 2 with u0
//	u3 rates {10}           — disjoint from u0
//	u4 rates {10, 11}       — co-rates item 10 with u3, disjoint from u0
//	u9 rates {5}            — gives item 5 a mean without touching others
func scopedStore(t *testing.T) *dataset.Store {
	t.Helper()
	return buildStore(t, [][3]float64{
		{0, 1, 4}, {0, 2, 3},
		{1, 1, 5}, {1, 3, 2},
		{2, 2, 4}, {2, 4, 5},
		{3, 10, 4},
		{4, 10, 5}, {4, 11, 3},
		{9, 5, 2},
	})
}

// applyRating pushes one rating into the frozen store's delta overlay.
func applyRating(t *testing.T, s *dataset.Store, u dataset.UserID, it dataset.ItemID, v float64) {
	t.Helper()
	if err := s.Apply(dataset.Rating{User: u, Item: it, Value: v, Time: 1}); err != nil {
		t.Fatalf("Apply(%d,%d,%g): %v", u, it, v, err)
	}
}

// warmNeighbors fills and returns the cached neighborhoods of users.
func warmNeighbors(p *Predictor, users ...dataset.UserID) map[dataset.UserID][]Neighbor {
	out := make(map[dataset.UserID][]Neighbor, len(users))
	for _, u := range users {
		out[u] = p.Neighbors(u)
	}
	return out
}

// TestNoteIngestScopedRetainsIndependentNeighborhoods pins the core
// retention contract: an ingest by u0 drops u0 and the dependents whose
// top-k contains u0, retains the users that share no item with u0 —
// bit-identical to a cold rebuild — and counts both outcomes exactly.
func TestNoteIngestScopedRetainsIndependentNeighborhoods(t *testing.T) {
	s := scopedStore(t)
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	warm := warmNeighbors(p, 0, 1, 2, 3, 4)

	applyRating(t, s, 0, 3, 5) // u0 rates item 3 (co-rated by u1)
	scope := p.NoteIngestScoped(0, 3)

	wantStale := map[dataset.UserID]struct{}{0: {}, 1: {}, 2: {}}
	if !reflect.DeepEqual(scope.Stale, wantStale) {
		t.Errorf("Stale = %v, want %v", scope.Stale, wantStale)
	}
	if scope.Dropped != 3 || scope.Retained != 2 {
		t.Errorf("scope = %d dropped / %d retained, want 3 / 2", scope.Dropped, scope.Retained)
	}
	st := p.Stats()
	if st.Invalidated != 3 || st.Retained != 2 || st.Size != 2 {
		t.Errorf("stats = %d invalidated / %d retained / %d resident, want 3 / 2 / 2", st.Invalidated, st.Retained, st.Size)
	}

	// The retained neighborhoods are the untouched cached slices.
	for _, u := range []dataset.UserID{3, 4} {
		if got := p.Neighbors(u); !reflect.DeepEqual(got, warm[u]) {
			t.Errorf("retained Neighbors(%d) changed: %v != %v", u, got, warm[u])
		}
	}

	// Differential: every user's neighborhood — retained or rebuilt —
	// must match a cold predictor over the extended dataset.
	cold, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []dataset.UserID{0, 1, 2, 3, 4} {
		if got, want := p.Neighbors(u), cold.Neighbors(u); !reflect.DeepEqual(got, want) {
			t.Errorf("post-ingest Neighbors(%d) = %v, want cold %v", u, got, want)
		}
	}
}

// TestNoteIngestScopedDropsNewlyEnteringRater pins the raters-of-item
// candidate walk: the reverse index has no edge between the rater and a
// user it never co-rated with, but an ingest on that user's item
// creates the first overlap — the rater now ranks into the cached
// top-k, so the neighborhood must drop.
func TestNoteIngestScopedDropsNewlyEnteringRater(t *testing.T) {
	s := scopedStore(t)
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	warmNeighbors(p, 3, 4)

	applyRating(t, s, 0, 10, 5) // u0's first overlap with u3 and u4
	scope := p.NoteIngestScoped(0, 10)

	for _, u := range []dataset.UserID{3, 4} {
		if _, ok := scope.Stale[u]; !ok {
			t.Errorf("user %d missing from stale set after the rater entered its neighborhood", u)
		}
	}
	cold, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []dataset.UserID{3, 4} {
		if got, want := p.Neighbors(u), cold.Neighbors(u); !reflect.DeepEqual(got, want) {
			t.Errorf("post-ingest Neighbors(%d) = %v, want cold %v", u, got, want)
		}
	}
}

// TestNoteIngestScopedRetainsWhenRaterDoesNotRank pins the recheck's
// retain verdict: a dependent whose top-k is full of strictly better
// similarities keeps its neighborhood even though the rater's
// similarity to it changed.
func TestNoteIngestScopedRetainsWhenRaterDoesNotRank(t *testing.T) {
	// u5 and u6 are identical twins (sim 1); u0 overlaps u5 weakly.
	s := buildStore(t, [][3]float64{
		{0, 1, 1},
		{5, 20, 4}, {5, 21, 3}, {5, 1, 1},
		{6, 20, 4}, {6, 21, 3}, {6, 1, 1},
	})
	p, err := NewPredictor(s, 1) // top-1 neighborhoods
	if err != nil {
		t.Fatal(err)
	}
	before := p.Neighbors(5)
	if len(before) != 1 || before[0].User != 6 {
		t.Fatalf("Neighbors(5) = %v, want the identical twin u6", before)
	}

	applyRating(t, s, 0, 21, 5) // changes sim(5, 0), but below the twin's 1.0
	scope := p.NoteIngestScoped(0, 21)
	if _, stale := scope.Stale[5]; stale {
		t.Errorf("u5 marked stale although the rater cannot enter its top-1")
	}
	if scope.Retained == 0 {
		t.Errorf("scope retained nothing; want u5's neighborhood kept")
	}
	cold, err := NewPredictor(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Neighbors(5), cold.Neighbors(5); !reflect.DeepEqual(got, want) {
		t.Errorf("retained Neighbors(5) = %v, want cold %v", got, want)
	}
}

// TestNoteIngestFullDropsEverything pins the legacy path's accounting:
// every resident neighborhood counts as invalidated, nothing is
// retained, and the reverse dependency index is reset with the cache.
func TestNoteIngestFullDropsEverything(t *testing.T) {
	s := scopedStore(t)
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	warmNeighbors(p, 0, 1, 2, 3, 4)

	applyRating(t, s, 0, 3, 5)
	p.NoteIngest(0)

	st := p.Stats()
	if st.Invalidated != 5 || st.Retained != 0 || st.Size != 0 {
		t.Errorf("stats = %d invalidated / %d retained / %d resident, want 5 / 0 / 0", st.Invalidated, st.Retained, st.Size)
	}
	for i := range p.deps.stripes {
		stripe := &p.deps.stripes[i]
		stripe.mu.Lock()
		n := len(stripe.deps)
		stripe.mu.Unlock()
		if n != 0 {
			t.Fatalf("reverse index not reset after NoteIngest: stripe %d holds %d edges", i, n)
		}
	}
}

// TestDepIndexRefcounts pins the counted-edge semantics: two fills
// holding the same edge survive one rollback, and a full release
// removes the entry entirely.
func TestDepIndexRefcounts(t *testing.T) {
	var d depIndex
	d.init()
	d.add(7, []dataset.UserID{1, 2})
	d.add(7, []dataset.UserID{1}) // overlapping fill of the same dependent
	d.remove(7, []dataset.UserID{1})
	if got := d.dependentsOf(1); len(got) != 1 || got[0] != 7 {
		t.Errorf("dependentsOf(1) = %v after one rollback, want [7]", got)
	}
	d.remove(7, []dataset.UserID{1, 2})
	if got := d.dependentsOf(1); got != nil {
		t.Errorf("dependentsOf(1) = %v after full release, want none", got)
	}
	if got := d.dependentsOf(2); got != nil {
		t.Errorf("dependentsOf(2) = %v after full release, want none", got)
	}
}

// TestRestoreNeighborhoodsDroppedOnFirstScopedIngest pins the
// conservative warm-restart contract: restored neighborhoods carry no
// dependency metadata, so the first scoped ingest drops them all and
// includes them in the stale set (their rows and views must drop too).
func TestRestoreNeighborhoodsDroppedOnFirstScopedIngest(t *testing.T) {
	s := scopedStore(t)
	warmP, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	warmNeighbors(warmP, 3, 4)
	exported := warmP.ExportNeighborhoods()

	cold, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n := cold.RestoreNeighborhoods(exported); n != 2 {
		t.Fatalf("restored %d neighborhoods, want 2", n)
	}

	applyRating(t, s, 0, 3, 5) // reaches neither u3 nor u4
	scope := cold.NoteIngestScoped(0, 3)
	for _, u := range []dataset.UserID{3, 4} {
		if _, ok := scope.Stale[u]; !ok {
			t.Errorf("restored user %d not in stale set; scoped ingest must drop dep-less entries", u)
		}
	}
	if got := cold.CachedNeighborhoods(); got != 0 {
		t.Errorf("%d neighborhoods resident after the first scoped ingest, want 0", got)
	}
	// Rebuilt entries are dependency-tracked again: a second unrelated
	// ingest retains them.
	warmNeighbors(cold, 3, 4)
	applyRating(t, s, 0, 2, 2)
	scope = cold.NoteIngestScoped(0, 2)
	if scope.Retained != 2 {
		t.Errorf("second ingest retained %d, want the 2 rebuilt neighborhoods", scope.Retained)
	}
}

// TestItemPredictorNoteIngestScoped pins the item-side scoping: stale
// item neighborhoods are exactly the rater's rated items.
func TestItemPredictorNoteIngestScoped(t *testing.T) {
	s := scopedStore(t)
	p, err := NewItemPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []dataset.ItemID{1, 2, 10} {
		p.itemNeighborsOf(it)
	}

	applyRating(t, s, 0, 3, 5) // u0 now rates {1, 2, 3}
	p.NoteIngestScoped(0)

	st := p.Stats()
	if st.Invalidated != 2 || st.Retained != 1 || st.Size != 1 {
		t.Errorf("stats = %d invalidated / %d retained / %d resident, want 2 / 1 / 1", st.Invalidated, st.Retained, st.Size)
	}
	cold, err := NewItemPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []dataset.ItemID{1, 2, 3, 10} {
		if got, want := p.itemNeighborsOf(it), cold.itemNeighborsOf(it); !reflect.DeepEqual(got, want) {
			t.Errorf("post-ingest item neighbors(%d) = %v, want cold %v", it, got, want)
		}
	}
}

// TestTimeWeightedRefreshScoped pins the clock contract: an older
// rating leaves the reference timestamp (and the scoped path) intact; a
// newer one moves it and demands the full drop.
func TestTimeWeightedRefreshScoped(t *testing.T) {
	s := dataset.NewStore()
	for _, r := range []dataset.Rating{
		{User: 0, Item: 1, Value: 4, Time: 100},
		{User: 1, Item: 1, Value: 3, Time: 200},
		{User: 2, Item: 2, Value: 1, Time: 50},
	} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Freeze()
	base, err := NewPredictor(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTimeWeightedPredictor(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(dataset.Rating{User: 0, Item: 2, Value: 5, Time: 150}); err != nil {
		t.Fatal(err)
	}
	if tw.RefreshScoped() {
		t.Errorf("RefreshScoped reported a clock move for a back-dated rating")
	}
	if tw.Now() != 200 {
		t.Errorf("Now = %d, want 200", tw.Now())
	}
	if err := s.Apply(dataset.Rating{User: 1, Item: 2, Value: 5, Time: 300}); err != nil {
		t.Fatal(err)
	}
	if !tw.RefreshScoped() {
		t.Errorf("RefreshScoped missed the clock advance")
	}
	if tw.Now() != 300 {
		t.Errorf("Now = %d, want 300", tw.Now())
	}
}

// TestCachedSourceInvalidateScoped pins the row cache's scoped sweep:
// stale users' rows drop, independent rows with an item-mean fallback
// on the rated item are patched bit-identically to a cold recompute,
// and fully independent rows are retained untouched.
func TestCachedSourceInvalidateScoped(t *testing.T) {
	s := scopedStore(t)
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCachedSource(p, 64)
	// u3's row over {10, 5}: item 10 is covered by neighbor u4; item 5
	// falls back to its item mean (only u9 rated it, no overlap with u3).
	items := []dataset.ItemID{10, 5}
	rowU3 := c.PredictBatch(3, items)
	rowU1 := c.PredictBatch(1, items)
	_ = rowU1

	applyRating(t, s, 0, 5, 4) // shifts item 5's mean; u0 shares nothing with u3
	scope := p.NoteIngestScoped(0, 5)
	if _, stale := scope.Stale[3]; stale {
		t.Fatalf("u3 unexpectedly stale; fixture broken")
	}
	patch, ok := p.ItemMean(5)
	if !ok {
		t.Fatal("item 5 lost its mean after an ingest of item 5")
	}
	c.InvalidateScoped(scope.Stale, 5, patch, true)

	st := c.Stats()
	if st.Invalidated != 1 || st.Retained != 1 || st.Patched != 1 {
		t.Errorf("stats = %d invalidated / %d retained / %d patched, want 1 / 1 / 1", st.Invalidated, st.Retained, st.Patched)
	}

	// The patched row must be bit-identical to a cold recompute, and
	// the pre-patch slice held by in-flight readers must be untouched.
	cold, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := cold.PredictBatch(3, items)
	got := c.PredictBatch(3, items)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("patched row = %v, want cold %v", got, want)
	}
	if rowU3[0] != want[0] {
		t.Errorf("covered entry changed: %v != %v", rowU3[0], want[0])
	}
	if rowU3[1] == got[1] {
		t.Errorf("patch mutated the shared pre-ingest row in place")
	}
	// u1 was stale: its row dropped, and the refill counts a miss.
	misses := c.Stats().Misses
	c.PredictBatch(1, items)
	if c.Stats().Misses != misses+1 {
		t.Errorf("stale user's row survived the scoped sweep")
	}
}

// TestCachedSourceScopedDropsUnknownDeps pins the conservative path: a
// row cached through a non-deps source cannot be proven fresh and must
// drop on any scoped sweep.
func TestCachedSourceScopedDropsUnknownDeps(t *testing.T) {
	s := scopedStore(t)
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCachedSource(plainSource{p}, 64)
	items := []dataset.ItemID{10}
	c.PredictBatch(3, items)
	if n := c.InvalidateScoped(map[dataset.UserID]struct{}{}, 1, 0, false); n != 1 {
		t.Errorf("scoped sweep dropped %d dep-less rows, want 1", n)
	}
}

// plainSource hides the predictor's DepsSource implementation.
type plainSource struct{ p *Predictor }

func (ps plainSource) Predict(u dataset.UserID, it dataset.ItemID) float64 {
	return ps.p.Predict(u, it)
}
func (ps plainSource) PredictBatch(u dataset.UserID, items []dataset.ItemID) []float64 {
	return ps.p.PredictBatch(u, items)
}

// TestScopedIngestRace hammers concurrent neighborhood fills against
// serialized scoped ingests, then checks every surviving and rebuilt
// neighborhood against a cold predictor — the epoch fence and the
// dep-edge insert/rollback protocol must never let a pre-ingest fill
// or a missed dependency survive. Run with -race.
func TestScopedIngestRace(t *testing.T) {
	s := randomStore(t, 40, 30, 500, 7)
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	users := s.Users()
	items := s.Items()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Neighbors(users[rng.Intn(len(users))])
			}
		}(int64(g))
	}
	rng := rand.New(rand.NewSource(99))
	var mu sync.Mutex // the world's ingest lock, simulated
	for i := 0; i < 60; i++ {
		u := users[rng.Intn(len(users))]
		it := items[rng.Intn(len(items))]
		mu.Lock()
		if err := s.Apply(dataset.Rating{User: u, Item: it, Value: float64(1 + rng.Intn(5)), Time: 1}); err != nil {
			mu.Unlock()
			t.Fatal(err)
		}
		p.NoteIngestScoped(u, it)
		mu.Unlock()
	}
	close(stop)
	wg.Wait()

	cold, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if got, want := p.Neighbors(u), cold.Neighbors(u); !reflect.DeepEqual(got, want) {
			t.Fatalf("Neighbors(%d) diverged after concurrent ingest: %v != %v", u, got, want)
		}
	}
}
