package cf

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestPearson(t *testing.T) {
	// Perfect positive correlation on co-rated items.
	s := buildStore(t, [][3]float64{
		{0, 1, 1}, {0, 2, 3}, {0, 3, 5},
		{1, 1, 2}, {1, 2, 3}, {1, 3, 4},
	})
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Pearson(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	if p.Pearson(0, 0) != 1 {
		t.Errorf("self Pearson != 1")
	}
	// Anti-correlated users.
	s2 := buildStore(t, [][3]float64{
		{0, 1, 1}, {0, 2, 5},
		{1, 1, 5}, {1, 2, 1},
	})
	p2, err := NewPredictor(s2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Pearson(0, 1); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti-correlated Pearson = %v, want -1", got)
	}
	// Single co-rated item: undefined → 0.
	s3 := buildStore(t, [][3]float64{{0, 1, 3}, {1, 1, 4}, {1, 2, 2}})
	p3, err := NewPredictor(s3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p3.Pearson(0, 1); got != 0 {
		t.Errorf("one co-rating Pearson = %v, want 0", got)
	}
}

func TestSimDispatch(t *testing.T) {
	s := buildStore(t, [][3]float64{
		{0, 1, 4}, {0, 2, 2},
		{1, 1, 2}, {1, 2, 4},
	})
	p, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sim(CosineSim, 0, 1) != p.Cosine(0, 1) {
		t.Errorf("Sim(CosineSim) != Cosine")
	}
	if p.Sim(PearsonSim, 0, 1) != p.Pearson(0, 1) {
		t.Errorf("Sim(PearsonSim) != Pearson")
	}
	if CosineSim.String() != "cosine" || PearsonSim.String() != "pearson" {
		t.Errorf("similarity labels wrong")
	}
}

func TestItemPredictorBasics(t *testing.T) {
	if _, err := NewItemPredictor(nil, 5); err == nil {
		t.Errorf("nil store accepted")
	}
	// Items 1 and 2 are rated identically relative to each rater's
	// mean; item 3 opposes them.
	s := buildStore(t, [][3]float64{
		{0, 1, 5}, {0, 2, 5}, {0, 3, 1},
		{1, 1, 4}, {1, 2, 4}, {1, 3, 2},
		{2, 1, 5}, {2, 2, 4}, {2, 3, 1},
		{3, 1, 4}, {3, 2, 5},
	})
	p, err := NewItemPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sim := p.AdjustedCosine(1, 2); sim <= 0 {
		t.Errorf("similar items adjusted cosine = %v, want > 0", sim)
	}
	if sim := p.AdjustedCosine(1, 3); sim >= 0 {
		t.Errorf("opposed items adjusted cosine = %v, want < 0", sim)
	}
	if p.AdjustedCosine(1, 1) != 1 {
		t.Errorf("self similarity != 1")
	}
	// User 3 rated items 1 and 2 highly; predict for item 3 must lean
	// low — but since only positively similar neighbors are used and
	// item 3 opposes them, the item-mean fallback applies.
	got := p.Predict(3, 3)
	if got < 1 || got > 5 {
		t.Errorf("prediction %v out of range", got)
	}
	// Own rating short-circuits.
	if p.Predict(0, 1) != 5 {
		t.Errorf("own rating not returned")
	}
	// Unknown item → global mean.
	if p.Predict(0, 99) != p.GlobalMean() {
		t.Errorf("global mean fallback broken")
	}
}

func TestItemPredictorAgreesRoughlyWithUserBased(t *testing.T) {
	cfg := dataset.DefaultSynthConfig()
	cfg.Users = 80
	cfg.Items = 120
	cfg.TargetRatings = 4000
	sy, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := NewPredictor(sy.Store, 20)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := NewItemPredictor(sy.Store, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions from both predictors should correlate positively
	// with latent scores (both are consistent estimators of the same
	// signal); check mean absolute error against latent is sane.
	var ubErr, ibErr float64
	n := 0
	for u := 0; u < 20; u++ {
		for it := 0; it < 40; it++ {
			uid, iid := dataset.UserID(u), dataset.ItemID(it)
			if sy.Store.HasRated(uid, iid) {
				continue
			}
			latent := sy.LatentScore(uid, iid)
			ubErr += math.Abs(ub.Predict(uid, iid) - latent)
			ibErr += math.Abs(ib.Predict(uid, iid) - latent)
			n++
		}
	}
	if n == 0 {
		t.Skip("no unrated pairs sampled")
	}
	ubErr /= float64(n)
	ibErr /= float64(n)
	if ubErr > 2 || ibErr > 2 {
		t.Errorf("MAE too high: user-based %.3f, item-based %.3f", ubErr, ibErr)
	}
}
