package core

import (
	"testing"

	"repro/internal/consensus"
)

// epsilonTestProblem builds a small GRECA-shaped problem reused by the
// EpsilonReached tests (AP consensus, no affinity — the pure
// preference shape keeps exact scores easy to reason about).
func epsilonTestProblem(t *testing.T, k int) *Problem {
	t.Helper()
	apref := [][]float64{
		{0.9, 0.1, 0.5, 0.3, 0.7, 0.2, 0.6, 0.4},
		{0.8, 0.2, 0.4, 0.6, 0.1, 0.9, 0.3, 0.5},
		{0.7, 0.3, 0.6, 0.2, 0.5, 0.4, 0.8, 0.1},
	}
	p, err := NewProblem(Input{Spec: consensus.AP(), Apref: apref, K: k, Agg: NoAffinityAggregator{}})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

// TestEpsilonReachedSemantics pins the certificate's contract across
// the run's lifecycle: never before bounds are evaluated, never for
// eps <= 0, monotone in eps, and false once Done.
func TestEpsilonReachedSemantics(t *testing.T) {
	p := epsilonTestProblem(t, 3)
	r, err := p.Runner(ModeGRECA)
	if err != nil {
		t.Fatalf("Runner: %v", err)
	}
	if r.EpsilonReached(1000) {
		t.Error("certificate before any step")
	}
	r.Step(1)
	if !r.Done() && !r.EpsilonReached(1000) {
		t.Error("huge eps not certified after an evaluated check")
	}
	if r.EpsilonReached(0) {
		t.Error("eps = 0 certified (exactness is not an approximation)")
	}
	if r.EpsilonReached(-1) {
		t.Error("negative eps certified")
	}
	for !r.Step(1) {
	}
	if r.EpsilonReached(1000) {
		t.Error("certificate on a Done runner")
	}

	// Full scan tracks no bounds: never certifies.
	r2, err := p.Runner(ModeFullScan)
	if err != nil {
		t.Fatalf("Runner(full-scan): %v", err)
	}
	r2.Step(1)
	if r2.EpsilonReached(1000) {
		t.Error("full scan certified an approximation")
	}
}

// TestEpsilonReachedCoversBufferedCandidates is the soundness test:
// when the certificate fires, every item outside the current top-k —
// including buffered candidates whose upper bounds exceed the
// threshold — must have a true exact score within eps of the returned
// k-th lower bound. Verified against the full-scan exact ranking on
// the same problem, for every eps at which the certificate first
// fires during a step-by-step run.
func TestEpsilonReachedCoversBufferedCandidates(t *testing.T) {
	exactProb := epsilonTestProblem(t, 3)
	exactRes, err := exactProb.Run(ModeFullScan)
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	// Full scan with K = m would give all scores; with K = 3 it gives
	// the top 3 exact — enough: any unreturned item scores at most the
	// 3rd exact score, and we check the returned set against it.
	for _, eps := range []float64{0.05, 0.1, 0.3, 0.6} {
		p := epsilonTestProblem(t, 3)
		r, err := p.Runner(ModeGRECA)
		if err != nil {
			t.Fatalf("Runner: %v", err)
		}
		for !r.Done() {
			if r.Step(1) {
				break
			}
			if r.EpsilonReached(eps) {
				snap := r.Snapshot()
				if len(snap.TopK) == 0 {
					t.Fatalf("eps=%g: certificate with empty top-k", eps)
				}
				kth := snap.TopK[len(snap.TopK)-1].LB
				// Every exact score outside the returned keys must sit
				// within eps of the returned k-th lower bound.
				returned := map[int]bool{}
				for _, si := range snap.TopK {
					returned[si.Key] = true
				}
				for _, is := range exactRes.TopK {
					if returned[is.Key] {
						continue
					}
					if is.LB > kth+eps {
						t.Errorf("eps=%g: unreturned item %d scores %.4f > kth %.4f + eps",
							eps, is.Key, is.LB, kth)
					}
				}
				break
			}
		}
	}
}
