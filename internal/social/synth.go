package social

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// StudyStart and StudyEnd bound the paper's observation window:
// January 2013 to January 2014 (Unix seconds, UTC).
const (
	StudyStart int64 = 1356998400 // 2013-01-01T00:00:00Z
	StudyEnd   int64 = 1388534400 // 2014-01-01T00:00:00Z
)

// SynthConfig controls the synthetic social-network generator. The
// defaults (DefaultSynthConfig) are calibrated so the paper's Figure 4
// shape holds: weekly periods are mostly empty of like activity while
// half-year periods almost never are.
type SynthConfig struct {
	// Users is the population size (the paper recruited 72).
	Users int
	// Communities is the number of friendship communities. Friendships
	// are dense inside a community and sparse across, which produces
	// the common-friend counts behind static affinity.
	Communities int
	// IntraFriendProb and InterFriendProb are edge probabilities
	// within and across communities.
	IntraFriendProb float64
	InterFriendProb float64
	// Start and End bound the observation window in Unix seconds (the
	// paper observes one year: January 2013 .. January 2014).
	Start, End int64
	// LikesPerUserMean is the mean number of page-like events per user
	// over the whole window. Likes are emitted in bursts, so small
	// periods are often empty even when the yearly count is healthy.
	LikesPerUserMean float64
	// BurstsPerUser is the mean number of activity bursts per user;
	// all of a user's likes fall inside its bursts.
	BurstsPerUser float64
	// BurstLength is the length of one burst in seconds.
	BurstLength int64
	// InterestBreadth is the number of categories a user draws most of
	// its likes from at any moment; smaller means more concentrated
	// interests and therefore higher same-community periodic affinity.
	InterestBreadth int
	// DriftStrength in [0,1] controls how far user interests move over
	// the window. Each user's interest profile interpolates between a
	// start anchor and an end anchor; pairs whose anchors diverge lose
	// periodic affinity over time (the paper's decaying-affinity
	// case), pairs whose anchors converge gain it.
	DriftStrength float64
	Seed          int64
}

// DefaultSynthConfig returns the study-scale configuration: 72 users
// as in the paper, 6 communities, one year of bursty page-likes.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Users:            72,
		Communities:      6,
		IntraFriendProb:  0.55,
		InterFriendProb:  0.03,
		Start:            StudyStart,
		End:              StudyEnd,
		LikesPerUserMean: 60,
		BurstsPerUser:    7,
		BurstLength:      5 * 24 * 3600,
		InterestBreadth:  10,
		DriftStrength:    0.8,
		Seed:             7,
	}
}

// Validate reports configuration errors.
func (c SynthConfig) Validate() error {
	switch {
	case c.Users < 2:
		return fmt.Errorf("social: SynthConfig.Users must be >= 2, got %d", c.Users)
	case c.Communities <= 0 || c.Communities > c.Users:
		return fmt.Errorf("social: SynthConfig.Communities must be in [1, Users], got %d", c.Communities)
	case c.IntraFriendProb < 0 || c.IntraFriendProb > 1:
		return fmt.Errorf("social: IntraFriendProb %g outside [0,1]", c.IntraFriendProb)
	case c.InterFriendProb < 0 || c.InterFriendProb > 1:
		return fmt.Errorf("social: InterFriendProb %g outside [0,1]", c.InterFriendProb)
	case c.End <= c.Start:
		return fmt.Errorf("social: End %d must be after Start %d", c.End, c.Start)
	case c.LikesPerUserMean <= 0:
		return fmt.Errorf("social: LikesPerUserMean must be positive, got %g", c.LikesPerUserMean)
	case c.BurstsPerUser <= 0:
		return fmt.Errorf("social: BurstsPerUser must be positive, got %g", c.BurstsPerUser)
	case c.BurstLength <= 0:
		return fmt.Errorf("social: BurstLength must be positive, got %d", c.BurstLength)
	case c.InterestBreadth <= 0 || c.InterestBreadth > NumFacebookCategories:
		return fmt.Errorf("social: InterestBreadth %d outside [1,%d]", c.InterestBreadth, NumFacebookCategories)
	case c.DriftStrength < 0 || c.DriftStrength > 1:
		return fmt.Errorf("social: DriftStrength %g outside [0,1]", c.DriftStrength)
	}
	return nil
}

// SynthNetwork is the generator output: the network plus the latent
// structure the user-study simulator needs (community membership and
// per-user interest anchors, which determine the ground-truth affinity
// dynamics).
type SynthNetwork struct {
	Network *Network
	// Community[u] is u's community index.
	Community []int
	// Sociability[u] in (0,1] scales how strongly u bonds inside its
	// community: high-sociability members form the community core
	// (many edges, strong ties), low ones its periphery. This is what
	// gives real neighborhoods their heavy-tailed tie strengths — and
	// groups their heterogeneous affinity degrees, without which
	// affinity-aware consensus would have nothing to exploit.
	Sociability []float64
	// StartAnchor[u] and EndAnchor[u] are the category-interest
	// profiles u interpolates between over the window. Each is a
	// probability distribution over categories.
	StartAnchor [][]float64
	EndAnchor   [][]float64
	Config      SynthConfig
}

// InterestProfile returns u's interest distribution at time t, the
// linear interpolation between the start and end anchors.
func (sn *SynthNetwork) InterestProfile(u dataset.UserID, t int64) []float64 {
	frac := float64(t-sn.Config.Start) / float64(sn.Config.End-sn.Config.Start)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	out := make([]float64, NumFacebookCategories)
	sa, ea := sn.StartAnchor[u], sn.EndAnchor[u]
	for c := range out {
		out[c] = (1-frac)*sa[c] + frac*ea[c]
	}
	return out
}

// interestCosine returns the cosine of the two users' interest
// profiles at time t.
func (sn *SynthNetwork) interestCosine(u, v dataset.UserID, t int64) float64 {
	pu := sn.InterestProfile(u, t)
	pv := sn.InterestProfile(v, t)
	var dot, nu, nv float64
	for c := range pu {
		dot += pu[c] * pv[c]
		nu += pu[c] * pu[c]
		nv += pv[c] * pv[c]
	}
	if nu == 0 || nv == 0 {
		return 0
	}
	return dot / math.Sqrt(nu*nv)
}

// trueAffinitySamples is the number of time points used to integrate
// interest alignment from the window start to the query time.
const trueAffinitySamples = 8

// TrueAffinity returns the latent ground-truth affinity of the pair
// (u,v) at time t in [0,1]. Following the paper's premise that
// affinity is *built up* by shared interests over time (Equation 1
// accumulates per-period drift from the beginning of time), the
// ground truth blends the pair's stable bond (community/friendship)
// with the time-averaged alignment of their interests from the window
// start through t. Pairs whose interests diverged during the window
// have lower affinity now than their friendship alone suggests, and
// vice versa — the signal the temporal models exist to capture.
func (sn *SynthNetwork) TrueAffinity(u, v dataset.UserID, t int64) float64 {
	if t < sn.Config.Start {
		t = sn.Config.Start
	}
	var acc float64
	for i := 0; i < trueAffinitySamples; i++ {
		ts := sn.Config.Start + (t-sn.Config.Start)*int64(i)/int64(trueAffinitySamples-1)
		acc += sn.interestCosine(u, v, ts)
	}
	cosine := acc / trueAffinitySamples

	// The sociability product is computed once so the result is exactly
	// symmetric in (u, v) — (0.7*su)*sv and (0.7*sv)*su differ in the
	// last ulp otherwise.
	soc := sn.Sociability[u] * sn.Sociability[v]
	bond := 0.0
	if sn.Community[u] == sn.Community[v] {
		bond = soc
	}
	if sn.Network.AreFriends(u, v) {
		bond = math.Max(bond, 0.15+0.7*soc)
	}
	return 0.5*bond + 0.5*cosine
}

// GenerateNetwork builds a synthetic social network per cfg.
// Deterministic for a fixed Seed.
func GenerateNetwork(cfg SynthConfig) (*SynthNetwork, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nw := NewNetwork(cfg.Users)
	sn := &SynthNetwork{
		Network:     nw,
		Community:   make([]int, cfg.Users),
		StartAnchor: make([][]float64, cfg.Users),
		EndAnchor:   make([][]float64, cfg.Users),
		Config:      cfg,
	}

	sn.Sociability = make([]float64, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		sn.Community[u] = u % cfg.Communities // balanced communities
		sn.Sociability[u] = 0.35 + 0.65*rng.Float64()
	}

	// Friendship edges: community-structured with core-periphery
	// degree heterogeneity — edge probability scales with the pair's
	// sociability product (mean product ≈ 0.46, so the configured
	// probabilities are preserved on average).
	const meanSocProduct = 0.46
	for u := 0; u < cfg.Users; u++ {
		for v := u + 1; v < cfg.Users; v++ {
			p := cfg.InterFriendProb
			if sn.Community[u] == sn.Community[v] {
				p = cfg.IntraFriendProb
			}
			p *= sn.Sociability[u] * sn.Sociability[v] / meanSocProduct
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				nw.AddFriendship(dataset.UserID(u), dataset.UserID(v))
			}
		}
	}

	// Community interest profiles: each community favors a block of
	// categories; individuals jitter around the community profile and
	// drift toward an end anchor that may leave the community's block.
	commCore := make([][]int, cfg.Communities)
	for c := range commCore {
		core := make([]int, cfg.InterestBreadth)
		for i := range core {
			core[i] = (c*31 + i*7 + rng.Intn(3)) % NumFacebookCategories
		}
		commCore[c] = core
	}

	for u := 0; u < cfg.Users; u++ {
		comm := sn.Community[u]
		sn.StartAnchor[u] = makeProfile(rng, commCore[comm], 0.85)
		// Half the users drift toward a different community's
		// interests (decaying same-community affinity), the other
		// half drift deeper into their own (growing affinity). The
		// drift distance is scaled by DriftStrength.
		var endCore []int
		if rng.Float64() < 0.5 {
			endCore = commCore[(comm+1+rng.Intn(cfg.Communities-1))%cfg.Communities]
		} else {
			endCore = commCore[comm]
		}
		target := makeProfile(rng, endCore, 0.85)
		end := make([]float64, NumFacebookCategories)
		for c := range end {
			end[c] = (1-cfg.DriftStrength)*sn.StartAnchor[u][c] + cfg.DriftStrength*target[c]
		}
		sn.EndAnchor[u] = end
	}

	// Page-like events: bursts at random offsets; each like's category
	// is drawn from the user's interest profile at the event time.
	window := cfg.End - cfg.Start
	for u := 0; u < cfg.Users; u++ {
		nBursts := 1 + rng.Intn(int(2*cfg.BurstsPerUser))
		nLikes := poissonish(rng, cfg.LikesPerUserMean)
		if nLikes == 0 {
			nLikes = 1
		}
		burstStarts := make([]int64, nBursts)
		for b := range burstStarts {
			burstStarts[b] = cfg.Start + int64(rng.Int63n(window-cfg.BurstLength))
		}
		for l := 0; l < nLikes; l++ {
			bs := burstStarts[rng.Intn(nBursts)]
			t := bs + int64(rng.Int63n(cfg.BurstLength))
			prof := sn.InterestProfile(dataset.UserID(u), t)
			nw.AddLike(PageLike{
				User:     dataset.UserID(u),
				Category: sampleCategory(rng, prof),
				Time:     t,
			})
		}
	}
	nw.Freeze()
	return sn, nil
}

// makeProfile builds a probability distribution over categories that
// puts coreMass on the core categories and spreads the rest uniformly.
func makeProfile(rng *rand.Rand, core []int, coreMass float64) []float64 {
	p := make([]float64, NumFacebookCategories)
	rest := (1 - coreMass) / float64(NumFacebookCategories)
	for c := range p {
		p[c] = rest
	}
	// Random weights over the core so users of one community are
	// similar but not identical.
	ws := make([]float64, len(core))
	var wSum float64
	for i := range ws {
		ws[i] = 0.3 + rng.Float64()
		wSum += ws[i]
	}
	for i, c := range core {
		p[c] += coreMass * ws[i] / wSum
	}
	return p
}

// sampleCategory draws a category index from distribution p.
func sampleCategory(rng *rand.Rand, p []float64) int {
	x := rng.Float64()
	var cum float64
	for c, pc := range p {
		cum += pc
		if x < cum {
			return c
		}
	}
	return len(p) - 1
}

// poissonish samples a Poisson-like count via a normal approximation,
// adequate for the means used here and free of extra dependencies.
func poissonish(rng *rand.Rand, mean float64) int {
	n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
	if n < 0 {
		n = 0
	}
	return n
}
