package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/consensus"
)

// runnerModes are the modes the anytime Runner supports.
var runnerModes = []Mode{ModeGRECA, ModeThresholdExact, ModeFullScan, ModeTA}

// TestRunnerFinalMatchesRun pins the Runner's stepped execution
// bit-identical to the closed-loop Run across all modes and all three
// consensus families (AP, MO, PD) — results, stats, and the final
// snapshot all agree.
func TestRunnerFinalMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, spec := range specs() {
		for _, mode := range runnerModes {
			in := randomInput(rng, 4, 60, 3, 5, spec, DiscreteAggregator{Periods: 3})
			ref, err := NewProblem(in)
			if err != nil {
				t.Fatalf("NewProblem: %v", err)
			}
			want, err := ref.Run(mode)
			if err != nil {
				t.Fatalf("%v/%v: Run: %v", spec, mode, err)
			}

			prob, err := NewProblem(in)
			if err != nil {
				t.Fatalf("NewProblem: %v", err)
			}
			r, err := prob.Runner(mode)
			if err != nil {
				t.Fatalf("%v/%v: Runner: %v", spec, mode, err)
			}
			if _, err := r.Result(); err == nil {
				t.Fatalf("%v/%v: Result before Done did not error", spec, mode)
			}
			steps := 0
			for !r.Step(1) {
				steps++
				if steps > 1_000_000 {
					t.Fatalf("%v/%v: runner did not terminate", spec, mode)
				}
			}
			got, err := r.Result()
			if err != nil {
				t.Fatalf("%v/%v: Result: %v", spec, mode, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v/%v: stepped result differs from Run:\n got %+v\nwant %+v", spec, mode, got, want)
			}
			snap := r.Snapshot()
			if !snap.Done {
				t.Errorf("%v/%v: final snapshot not Done", spec, mode)
			}
			if len(snap.TopK) != len(want.TopK) {
				t.Fatalf("%v/%v: final snapshot has %d items, Run %d", spec, mode, len(snap.TopK), len(want.TopK))
			}
			for i, si := range snap.TopK {
				is := want.TopK[i]
				if si.Key != is.Key || si.LB != is.LB || si.UB != is.UB {
					t.Errorf("%v/%v: snapshot[%d] = %+v, Run %+v", spec, mode, i, si, is)
				}
				if si.Resolved != (is.LB == is.UB) {
					t.Errorf("%v/%v: snapshot[%d].Resolved = %v with LB=%g UB=%g", spec, mode, i, si.Resolved, is.LB, is.UB)
				}
			}
			if snap.BoundGap() != 0 {
				t.Errorf("%v/%v: done snapshot has bound gap %g", spec, mode, snap.BoundGap())
			}
		}
	}
}

// TestRunnerSnapshotsMonotone asserts the anytime contract: across
// steps, an item's lower bound never decreases and its upper bound
// never increases, and the run's stats only grow.
func TestRunnerSnapshotsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, spec := range specs() {
		in := randomInput(rng, 3, 80, 2, 6, spec, DiscreteAggregator{Periods: 2})
		in.CheckInterval = 2
		prob, err := NewProblem(in)
		if err != nil {
			t.Fatalf("NewProblem: %v", err)
		}
		r, err := prob.Runner(ModeGRECA)
		if err != nil {
			t.Fatalf("Runner: %v", err)
		}
		type bounds struct{ lb, ub float64 }
		last := map[int]bounds{}
		prevAccesses, prevChecks := 0, 0
		for !r.Done() {
			r.Step(1)
			snap := r.Snapshot()
			if snap.Stats.SequentialAccesses < prevAccesses || snap.Stats.Checks < prevChecks {
				t.Fatalf("%v: stats went backward: %+v", spec, snap.Stats)
			}
			prevAccesses, prevChecks = snap.Stats.SequentialAccesses, snap.Stats.Checks
			for _, si := range snap.TopK {
				if si.UB < si.LB {
					t.Fatalf("%v: item %d has UB %g < LB %g", spec, si.Key, si.UB, si.LB)
				}
				if b, ok := last[si.Key]; ok {
					if si.LB < b.lb {
						t.Errorf("%v: item %d LB decreased %g -> %g", spec, si.Key, b.lb, si.LB)
					}
					if si.UB > b.ub {
						t.Errorf("%v: item %d UB increased %g -> %g", spec, si.Key, b.ub, si.UB)
					}
				}
				last[si.Key] = bounds{si.LB, si.UB}
			}
			if si := snap.TopK; !snap.Done {
				for i := 1; i < len(si); i++ {
					if si[i].LB > si[i-1].LB {
						t.Fatalf("%v: snapshot not sorted by LB at %d", spec, i)
					}
				}
			}
		}
	}
}

// TestRunnerStepGranularity: for GRECA one step is exactly one
// stopping check, so checks advance by one per step.
func TestRunnerStepGranularity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomInput(rng, 3, 50, 2, 4, consensus.AP(), DiscreteAggregator{Periods: 2})
	in.CheckInterval = 3
	prob, err := NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	r, err := prob.Runner(ModeGRECA)
	if err != nil {
		t.Fatalf("Runner: %v", err)
	}
	prev := 0
	for !r.Done() {
		r.Step(1)
		snap := r.Snapshot()
		if got := snap.Stats.Checks - prev; got != 1 {
			t.Fatalf("one Step advanced %d checks (total %d)", got, snap.Stats.Checks)
		}
		prev = snap.Stats.Checks
		if !snap.Done && snap.Stats.Rounds%in.CheckInterval != 0 {
			t.Fatalf("step returned off a check boundary: %d rounds, interval %d", snap.Stats.Rounds, in.CheckInterval)
		}
	}
	// Step with a batch size covers multiple checks at once.
	prob2, _ := NewProblem(in)
	r2, err := prob2.Runner(ModeGRECA)
	if err != nil {
		t.Fatalf("Runner: %v", err)
	}
	r2.Step(1 << 30)
	if !r2.Done() {
		t.Fatal("large Step did not run to completion")
	}
	res1, _ := r.Result()
	res2, _ := r2.Result()
	if !reflect.DeepEqual(res1, res2) {
		t.Error("step-by-1 and step-by-many results differ")
	}
}

// TestRunnerBoundGapEvaluated: before the stopping bounds have been
// computed, BoundGap reports +Inf — never 0, which would read as
// convergence — and once the run is done it reports exactly 0. GRECA
// evaluates at its first check; full-scan never evaluates until done.
func TestRunnerBoundGapEvaluated(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randomInput(rng, 3, 40, 2, 4, consensus.AP(), DiscreteAggregator{Periods: 2})

	prob, err := NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	r, err := prob.Runner(ModeFullScan)
	if err != nil {
		t.Fatalf("Runner: %v", err)
	}
	if gap := r.Snapshot().BoundGap(); !math.IsInf(gap, 1) {
		t.Errorf("full-scan pre-run gap = %g, want +Inf", gap)
	}
	r.Step(1)
	if snap := r.Snapshot(); !snap.Done && !math.IsInf(snap.BoundGap(), 1) {
		t.Errorf("full-scan mid-run gap = %g, want +Inf", snap.BoundGap())
	}
	for !r.Step(1) {
	}
	if gap := r.Snapshot().BoundGap(); gap != 0 {
		t.Errorf("done gap = %g, want 0", gap)
	}

	prob2, _ := NewProblem(in)
	g, err := prob2.Runner(ModeGRECA)
	if err != nil {
		t.Fatalf("Runner: %v", err)
	}
	if gap := g.Snapshot().BoundGap(); !math.IsInf(gap, 1) {
		t.Errorf("GRECA pre-run gap = %g, want +Inf", gap)
	}
	g.Step(1)
	if snap := g.Snapshot(); !snap.Evaluated {
		t.Error("GRECA first check did not evaluate the stopping bounds")
	} else if math.IsInf(snap.BoundGap(), 1) {
		t.Error("GRECA evaluated snapshot still reports +Inf")
	}
}

// TestRunnerEarlyAbandon: dropping a Runner mid-run is safe and a new
// Runner on the same Problem starts clean (cursors rewound).
func TestRunnerEarlyAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInput(rng, 3, 60, 2, 5, consensus.AP(), DiscreteAggregator{Periods: 2})
	prob, err := NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	want, err := prob.Run(ModeGRECA)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	r, err := prob.Runner(ModeGRECA)
	if err != nil {
		t.Fatalf("Runner: %v", err)
	}
	r.Step(2) // abandon after two checks
	snap := r.Snapshot()
	if snap.Done {
		t.Skip("run finished in two checks; nothing to abandon")
	}
	if snap.Stats.Checks != 2 {
		t.Fatalf("snapshot has %d checks, want 2", snap.Stats.Checks)
	}

	again, err := prob.Run(ModeGRECA)
	if err != nil {
		t.Fatalf("Run after abandoned Runner: %v", err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("Run after abandoned Runner differs from fresh Run")
	}
}

// TestRunnerReleasedProblem: a Released problem refuses to build a
// Runner, exactly like Run refuses to execute.
func TestRunnerReleasedProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomViewInput(rng, 2, 20, 3, consensus.PD(0.8), DiscreteAggregator{Periods: 2}, false)
	vs := randomViewSet(rng, in, 0.2)
	prob, err := NewProblemFromViews(in, vs)
	if err != nil {
		t.Fatalf("NewProblemFromViews: %v", err)
	}
	prob.Release()
	if _, err := prob.Runner(ModeGRECA); err == nil {
		t.Error("Runner on a released problem did not error")
	}
}
