package repro

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/dataset"
)

// batchSchedConfig is a small world so the shard × consensus matrix
// stays fast under -race.
func batchSchedConfig(shards int) Config {
	cfg := QuickConfig()
	cfg.Dataset.Users = 150
	cfg.Dataset.TargetRatings = 10_000
	cfg.Dataset.Items = 500
	cfg.Shards = shards
	return cfg
}

// TestBatchShardAwareDifferential pins the shard-aware scheduler to
// the degenerate single-queue path (the old round-robin dispatch) and
// to the sequential facade, across shards ∈ {1,4,16} with AP, MO, and
// PD consensus in the same batch. Scheduling moves requests between
// workers but must never change a result byte.
func TestBatchShardAwareDifferential(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w, err := NewWorld(batchSchedConfig(shards))
			if err != nil {
				t.Fatalf("building world: %v", err)
			}
			parts := w.Participants()

			// sameShard picks members from one shard when the world is
			// sharded, so the per-shard queues actually get traffic.
			sameShard := func(n int) []dataset.UserID {
				want := w.ShardOf(parts[0])
				var g []dataset.UserID
				for _, u := range parts {
					if w.ShardOf(u) == want {
						g = append(g, u)
						if len(g) == n {
							break
						}
					}
				}
				return g
			}

			reqs := []Request{
				// Contiguous participant slices are usually mixed-shard:
				// the residual queue's traffic.
				{Group: parts[:3], Options: Options{K: 4, NumItems: 150}},
				{Group: parts[4:6], Options: Options{K: 4, NumItems: 150, Consensus: consensus.MO()}},
				{Group: parts[2:7], Options: Options{K: 3, NumItems: 120, Consensus: consensus.PD(0.8)}},
				// Single-shard groups: the per-shard queues' traffic.
				{Group: sameShard(2), Options: Options{K: 4, NumItems: 150}},
				{Group: sameShard(3), Options: Options{K: 3, NumItems: 120, Consensus: consensus.PD(0.8)}},
				{Group: sameShard(1), Options: Options{K: 2, NumItems: 100, Consensus: consensus.MO()}},
				// Duplicate of the first request (shares its candidate
				// pool) and an invalid one (error slot).
				{Group: parts[:3], Options: Options{K: 4, NumItems: 150}},
				{Group: nil, Options: Options{K: 4}},
			}

			aware := w.RecommendBatch(reqs)

			batchShardAware = false
			roundRobin := w.RecommendBatch(reqs)
			batchShardAware = true

			if !reflect.DeepEqual(aware, roundRobin) {
				t.Fatalf("shard-aware schedule diverged from round-robin schedule")
			}
			for i, req := range reqs {
				if len(req.Group) == 0 {
					if aware[i].Err == nil {
						t.Errorf("request %d: empty group did not error", i)
					}
					continue
				}
				want, err := w.Recommend(req.Group, req.Options)
				if err != nil {
					t.Fatalf("sequential request %d: %v", i, err)
				}
				if !reflect.DeepEqual(aware[i].Recommendation, want) {
					t.Errorf("request %d: shard-aware batch result diverged from sequential", i)
				}
			}
		})
	}
}

// TestBatchShardClassification pins the scheduler's bucketing: a group
// is keyed to a shard exactly when every member routes there, and the
// residual bucket takes mixed and empty groups.
func TestBatchShardClassification(t *testing.T) {
	w, err := NewWorld(batchSchedConfig(4))
	if err != nil {
		t.Fatalf("building world: %v", err)
	}
	parts := w.Participants()
	if got := w.batchShardOf(nil); got != -1 {
		t.Errorf("empty group classified to shard %d, want -1", got)
	}
	for _, u := range parts[:8] {
		if got, want := w.batchShardOf([]dataset.UserID{u}), w.ShardOf(u); got != want {
			t.Errorf("singleton %d classified to %d, want %d", u, got, want)
		}
	}
	// Find a mixed pair; with 4 shards over 150 users one must exist.
	for _, u := range parts {
		if w.ShardOf(u) != w.ShardOf(parts[0]) {
			if got := w.batchShardOf([]dataset.UserID{parts[0], u}); got != -1 {
				t.Errorf("mixed pair classified to shard %d, want -1", got)
			}
			return
		}
	}
	t.Fatal("no mixed-shard pair found")
}

// TestCandidateKeyFormat pins the allocation-free key builder to the
// historical fmt-based format ("n|id1,id2,") and its order
// insensitivity, and checks that scratch reuse across calls cannot
// leak state between keys.
func TestCandidateKeyFormat(t *testing.T) {
	cases := []struct {
		group []dataset.UserID
		n     int
		want  string
	}{
		{nil, 7, "7|"},
		{[]dataset.UserID{5}, 10, "10|5,"},
		{[]dataset.UserID{30, 4, 17}, 600, "600|4,17,30,"},
		{[]dataset.UserID{4, 17, 30}, 600, "600|4,17,30,"},
	}
	var scratch candKeyScratch
	for _, c := range cases {
		if got := candidateKey(c.group, c.n); got != c.want {
			t.Errorf("candidateKey(%v, %d) = %q, want %q", c.group, c.n, got, c.want)
		}
		if got := string(scratch.appendKey(c.group, c.n)); got != c.want {
			t.Errorf("appendKey(%v, %d) = %q, want %q", c.group, c.n, got, c.want)
		}
	}
	// Longer key first, shorter after: the shorter must not see the
	// longer's tail through the reused buffer.
	scratch.appendKey([]dataset.UserID{100000, 200000, 300000}, 999999)
	if got := string(scratch.appendKey([]dataset.UserID{1}, 2)); got != "2|1," {
		t.Errorf("reused scratch produced %q, want %q", got, "2|1,")
	}
}

// TestCandidateKeyScratchAllocs verifies the hot-path promise: key
// construction with a warm scratch performs zero allocations.
func TestCandidateKeyScratchAllocs(t *testing.T) {
	group := []dataset.UserID{30, 4, 17, 255, 9}
	var scratch candKeyScratch
	scratch.appendKey(group, 600) // warm the buffers
	avg := testing.AllocsPerRun(100, func() {
		scratch.appendKey(group, 600)
	})
	if avg != 0 {
		t.Errorf("appendKey allocates %.1f times per call with warm scratch, want 0", avg)
	}
}
