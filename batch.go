package repro

import (
	"context"
	"math"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// Request is one unit of a RecommendBatch call: a group plus its
// options.
type Request struct {
	Group   []dataset.UserID
	Options Options
}

// Result pairs one Request's outcome with its error. Exactly one of
// Recommendation and Err is set.
type Result struct {
	Recommendation *Recommendation
	Err            error
}

// RecommendBatch runs many Recommend calls concurrently — the shape of
// the paper's Figure 6 sweep, where hundreds of groups are scored in
// one pass. Results are positionally aligned with reqs. It is
// RecommendBatchContext under a background context.
func (w *World) RecommendBatch(reqs []Request) []Result {
	return w.RecommendBatchContext(context.Background(), reqs)
}

// batchShardAware selects the per-shard scheduling path. The flag
// exists for the differential tests, which pin the shard-aware
// schedule against the degenerate single-queue schedule (the old
// round-robin dispatch): scheduling only changes which worker runs
// which request, never any computed value, so results must be
// identical either way.
var batchShardAware = true

// batchQueue is one lock-free work queue of request indices; workers
// claim slots with an atomic cursor. The cursor may overshoot len(idxs)
// by at most one per contending worker, which claim tolerates.
type batchQueue struct {
	idxs []int
	pos  atomic.Int64
}

func (q *batchQueue) claim() (int, bool) {
	p := q.pos.Add(1) - 1
	if p >= int64(len(q.idxs)) {
		return 0, false
	}
	return q.idxs[p], true
}

// batchShardOf classifies a request group for the batch scheduler: the
// single shard holding every member's state, or -1 for empty or
// mixed-shard groups (which go to the residual queue).
func (w *World) batchShardOf(group []dataset.UserID) int {
	if len(group) == 0 {
		return -1
	}
	s := w.ShardOf(group[0])
	for _, u := range group[1:] {
		if w.ShardOf(u) != s {
			return -1
		}
	}
	return s
}

// RecommendBatchContext runs many Recommend calls concurrently under
// one caller context: every worker threads ctx through
// RecommendContext, so a single cancel (or deadline expiry) stops the
// whole sweep — in-flight requests stop within one check interval,
// not-yet-started ones are skipped. Interrupted slots carry ctx's
// error (a Result holds either a Recommendation or an Err, never
// both); completed slots keep their results.
//
// Beyond running requests in parallel over GOMAXPROCS workers, the
// batch shares assembly work across requests: candidate pools are
// computed once per distinct (group, NumItems) pair, and because
// identical candidate slices fingerprint identically, every member
// shared by two requests reuses the same materialized sorted-list
// store view (and pool→candidate mapping) — or, on the dense fallback
// path, the same prediction row in the CF row cache — instead of
// re-scoring and re-sorting.
//
// Fully identical requests — same group order, same result-shaping
// options — collapse further: one representative runs, the duplicates
// reuse its *Recommendation (callers must treat results as read-only),
// and each duplicate bumps MuxStats.Shared. Unlike the request-level
// multiplexer this dedup is deterministic, not a race on timing: the
// duplicate never starts a run even if the representative already
// finished. Config.DisableRunSharing turns it off along with the mux.
//
// Scheduling is shard-aware: requests are bucketed by the shard
// holding their group's state (World.ShardOf), each worker owns a
// disjoint stripe of shard queues, and mixed-shard or empty-group
// requests land in a residual queue every worker drains after its own
// stripe. Workers therefore sweep one shard's CF-cache and list-store
// lock stripes at a time instead of all of them interleaved; once a
// worker's stripe and the residual run dry it steals from the other
// queues, so no worker idles while work remains. Scheduling only moves
// requests between workers — results are positionally aligned and
// bit-identical to any other schedule.
func (w *World) RecommendBatchContext(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}

	// Candidate pools, deduplicated across the batch. Each distinct
	// key computes once (the first worker to claim it does the work;
	// others wait on its Once).
	type candEntry struct {
		once  sync.Once
		items []dataset.ItemID
	}
	var candMu sync.Mutex
	cands := make(map[string]*candEntry, len(reqs))
	candidatesFor := func(scratch *candKeyScratch, group []dataset.UserID, n int) []dataset.ItemID {
		key := scratch.appendKey(group, n)
		candMu.Lock()
		e, ok := cands[string(key)] // alloc-free lookup on []byte key
		if !ok {
			e = &candEntry{}
			cands[string(key)] = e
		}
		candMu.Unlock()
		e.once.Do(func() { e.items = w.CandidateItems(group, n) })
		return e.items
	}

	// Whole-run singleflight, deduplicated across the batch. Requests
	// that are already known to be duplicates bypass the request-level
	// multiplexer: the representative runs the direct (unshared) loop,
	// so a batch of distinct requests pays no mux bookkeeping at all.
	var shareMu sync.Mutex
	var shares map[string]*batchRunShare
	var shareSlab []batchRunShare // one allocation backs every entry
	if w.mux != nil {
		shares = make(map[string]*batchRunShare, len(reqs))
		shareSlab = make([]batchRunShare, len(reqs))
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}

	// Bucket requests into per-shard queues plus a residual queue at
	// index nShards. The degenerate path (one shard, or the flag off)
	// routes everything through the residual queue, which every worker
	// drains with the same atomic claim — the old single round-robin
	// feed.
	nShards := w.Shards()
	if !batchShardAware {
		nShards = 1
	}
	queues := make([]*batchQueue, nShards+1)
	for i := range queues {
		queues[i] = &batchQueue{}
	}
	residual := queues[nShards]
	if nShards == 1 {
		residual.idxs = make([]int, len(reqs))
		for i := range reqs {
			residual.idxs[i] = i
		}
	} else {
		for i := range reqs {
			q := residual
			if s := w.batchShardOf(reqs[i].Group); s >= 0 {
				q = queues[s]
			}
			q.idxs = append(q.idxs, i)
		}
	}

	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			scratch := &candKeyScratch{}
			process := func(i int) {
				if err := ctx.Err(); err != nil {
					// One cancel stops the whole sweep: drain the
					// remaining slots without starting their runs.
					out[i] = Result{Err: err}
					return
				}
				req := reqs[i]
				opt := req.Options
				// fill applies the same defaulting Recommend will use;
				// on validation errors skip sharing and let Recommend
				// produce the error itself.
				filled := opt.fill() == nil
				if filled && opt.Items == nil && len(req.Group) > 0 {
					opt.Items = candidatesFor(scratch, req.Group, opt.NumItems)
				}
				var rec *Recommendation
				var err error
				if filled && shares != nil {
					// The key reuses the worker's scratch buffer —
					// candidatesFor is done with it — so only the first
					// insert of each distinct key allocates.
					key := appendBatchRunKey(scratch.buf[:0], req.Group, &opt)
					scratch.buf = key
					shareMu.Lock()
					sh, ok := shares[string(key)]
					if !ok {
						sh = &shareSlab[len(shares)]
						shares[string(key)] = sh
					}
					shareMu.Unlock()
					ran := false
					sh.once.Do(func() {
						ran = true
						sh.rec, sh.err = w.recommendStreamDirect(ctx, req.Group, opt, nil)
					})
					if !ran {
						w.mux.shared.Add(1)
					}
					rec, err = sh.rec, sh.err
				} else {
					rec, err = w.RecommendContext(ctx, req.Group, opt)
				}
				if err != nil {
					// Keep the exactly-one-field Result contract: a
					// cancelled run's partial recommendation is a
					// single-request (RecommendContext) affordance.
					rec = nil
				}
				out[i] = Result{Recommendation: rec, Err: err}
			}
			// Own stripe first: queues k, k+workers, ... — disjoint
			// across workers, so each sweeps one shard's locks at a
			// time while the stripes last.
			for q := k; q < nShards; q += workers {
				for {
					i, ok := queues[q].claim()
					if !ok {
						break
					}
					process(i)
				}
			}
			// Residual (mixed-shard and empty groups), shared by all.
			for {
				i, ok := residual.claim()
				if !ok {
					break
				}
				process(i)
			}
			// Steal: drain whatever other stripes still hold so no
			// worker idles while work remains.
			for q := 0; q < nShards; q++ {
				for {
					i, ok := queues[q].claim()
					if !ok {
						break
					}
					process(i)
				}
			}
		}(k)
	}
	wg.Wait()
	return out
}

// batchRunShare is one deduplicated run within a batch: the first
// request to claim the key executes, every duplicate waits on the Once
// and reuses the settled outcome.
type batchRunShare struct {
	once sync.Once
	rec  *Recommendation
	err  error
}

// appendBatchRunKey extends the mux run fingerprint with Epsilon: the
// mux treats it as a per-subscriber stopping policy, but here it
// shapes the one shared result, so requests differing in Epsilon must
// not collapse. (ProgressEvery stays excluded — the batch passes no
// progress consumer, so it cannot influence the outcome.)
func appendBatchRunKey(b []byte, group []dataset.UserID, o *Options) []byte {
	b = appendRunFingerprint(b, group, o)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(o.Epsilon), 16)
	return b
}

// candKeyScratch holds one worker's reusable buffers for candidate-key
// construction, so steady-state key building allocates nothing.
type candKeyScratch struct {
	buf []byte
	ids []int64
}

// appendKey builds the canonical candidate-pool key (order-insensitive
// over the group — the pool is a set property — plus the candidate
// count) into the scratch buffer. The returned bytes alias the scratch
// and are only valid until the next appendKey call.
func (s *candKeyScratch) appendKey(group []dataset.UserID, n int) []byte {
	s.ids = s.ids[:0]
	for _, u := range group {
		s.ids = append(s.ids, int64(u))
	}
	slices.Sort(s.ids)
	b := s.buf[:0]
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '|')
	for _, id := range s.ids {
		b = strconv.AppendInt(b, id, 10)
		b = append(b, ',')
	}
	s.buf = b
	return b
}

// candidateKey canonicalizes a group (order-insensitively) plus the
// candidate count as a standalone string — the allocating form of
// candKeyScratch.appendKey, kept for one-off callers.
func candidateKey(group []dataset.UserID, n int) string {
	var s candKeyScratch
	return string(s.appendKey(group, n))
}
