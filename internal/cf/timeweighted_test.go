package cf

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func buildTimedStore(t *testing.T, rows [][4]float64) *dataset.Store {
	t.Helper()
	s := dataset.NewStore()
	for _, r := range rows {
		err := s.Add(dataset.Rating{
			User:  dataset.UserID(int(r[0])),
			Item:  dataset.ItemID(int(r[1])),
			Value: r[2],
			Time:  int64(r[3]),
		})
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	s.Freeze()
	return s
}

func TestTimeWeightedRequiresBase(t *testing.T) {
	if _, err := NewTimeWeightedPredictor(nil, 0); err == nil {
		t.Errorf("nil base accepted")
	}
}

func TestTimeWeightedFavorsRecentOpinions(t *testing.T) {
	const day = 24 * 3600
	// Two neighbors equally similar to user 0 (identical history on
	// item 1); they disagree on item 2: the OLD rating says 5, the
	// RECENT rating says 1.
	s := buildTimedStore(t, [][4]float64{
		{0, 1, 4, 1000 * day},
		{1, 1, 4, 1000 * day}, {1, 2, 5, 0}, // ancient opinion
		{2, 1, 4, 1000 * day}, {2, 2, 1, 1000 * day}, // fresh opinion
	})
	base, err := NewPredictor(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTimeWeightedPredictor(base, 100*day)
	if err != nil {
		t.Fatal(err)
	}
	plain := base.Predict(0, 2)
	timed := tw.Predict(0, 2)
	if !(timed < plain) {
		t.Errorf("time weighting should pull the prediction toward the recent rating: plain %.3f, timed %.3f", plain, timed)
	}
	if timed > 2 {
		t.Errorf("timed prediction %.3f should be close to the fresh rating 1", timed)
	}
}

func TestTimeWeightedWeightFunction(t *testing.T) {
	s := buildTimedStore(t, [][4]float64{{0, 1, 3, 1000}})
	base, err := NewPredictor(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTimeWeightedPredictor(base, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tw.Now() != 1000 {
		t.Fatalf("now = %d", tw.Now())
	}
	if w := tw.weight(1000); w != 1 {
		t.Errorf("fresh weight = %v", w)
	}
	if w := tw.weight(900); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("one half-life weight = %v, want 0.5", w)
	}
	if w := tw.weight(800); math.Abs(w-0.25) > 1e-12 {
		t.Errorf("two half-lives weight = %v, want 0.25", w)
	}
	if w := tw.weight(2000); w != 1 {
		t.Errorf("future-dated rating weight = %v, want 1", w)
	}
}

func TestTimeWeightedFallbacks(t *testing.T) {
	s := buildTimedStore(t, [][4]float64{
		{0, 1, 5, 10},
		{1, 2, 2, 10}, {1, 3, 4, 10},
	})
	base, err := NewPredictor(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTimeWeightedPredictor(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tw.HalfLife != DefaultHalfLife {
		t.Errorf("default half-life not applied")
	}
	// Own rating short-circuits.
	if tw.Predict(0, 1) != 5 {
		t.Errorf("own rating not returned")
	}
	// No neighbor coverage → item mean.
	if got := tw.Predict(0, 2); got != 2 {
		t.Errorf("item-mean fallback = %v, want 2", got)
	}
	// Unknown item → global mean.
	if got := tw.Predict(0, 999); got != base.GlobalMean() {
		t.Errorf("global-mean fallback = %v", got)
	}
}

func TestTimeWeightedRange(t *testing.T) {
	cfg := dataset.DefaultSynthConfig()
	cfg.Users = 50
	cfg.Items = 100
	cfg.TargetRatings = 1500
	sy, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewPredictor(sy.Store, 10)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTimeWeightedPredictor(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		for it := 0; it < 30; it++ {
			v := tw.Predict(dataset.UserID(u), dataset.ItemID(it))
			if v < 1 || v > 5 {
				t.Fatalf("prediction %v out of range", v)
			}
		}
	}
}
