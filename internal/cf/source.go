package cf

import "repro/internal/dataset"

// Source is the absolute-preference abstraction of the engine's
// preference layer: anything that can predict a user's rating for one
// item or for a whole candidate slice at once. The paper's formulation
// is agnostic to the apref producer ("existing single-user
// recommendation algorithms ... could be used"); Source is where that
// agnosticism lives in code. All three predictors in this package
// implement it, as does the CachedSource row-cache wrapper, so the
// assembly layer never dispatches on concrete predictor types.
//
// PredictBatch must be equivalent to calling Predict per item — same
// values, computed once per (user, item) — but is free to resolve
// shared work (the user's neighborhood, the user's own rating vector)
// a single time for the whole slice. Implementations must be safe for
// concurrent use.
type Source interface {
	// Predict returns the predicted rating of u for item it on the
	// 1..5 scale. Predictions are total: implementations fall back to
	// item and global means when coverage is missing.
	Predict(u dataset.UserID, it dataset.ItemID) float64
	// PredictBatch returns predictions of u for every item in items,
	// in order. The returned slice is owned by the caller unless the
	// implementation documents otherwise (CachedSource returns shared
	// read-only rows).
	PredictBatch(u dataset.UserID, items []dataset.ItemID) []float64
}

// BatchInto is an optional Source extension that writes predictions
// into a caller-provided buffer, letting the assembly layer reuse
// pooled rows without an intermediate allocation. dst must have
// len(items) capacity available; implementations fill dst[:len(items)].
type BatchInto interface {
	PredictBatchInto(u dataset.UserID, items []dataset.ItemID, dst []float64)
}

// RowDeps records which entries of a predicted row fell through to the
// mean-fallback ladder — the dependency metadata scoped invalidation
// needs. An entry that is covered by the user's own rating or by
// neighbor evidence depends only on the user's neighborhood (tracked by
// the reverse dependency index); an entry that fell to a mean depends
// on that mean, which shifts on every ingest of its item (item mean) or
// on any ingest at all (global mean).
type RowDeps struct {
	// FallbackItems and FallbackPos pair each fallback entry's item
	// with its position in the predicted slice (duplicated candidates
	// produce one pair per position). Both are nil when every entry was
	// covered — the common case, costing nothing.
	FallbackItems []dataset.ItemID
	FallbackPos   []int32
	// UsedGlobal reports that at least one entry fell all the way to
	// the global mean (its item had no ratings at all); such a row is
	// stale after every ingest.
	UsedGlobal bool
}

// Fallback records one fallback entry.
func (d *RowDeps) fallback(it dataset.ItemID, pos int, global bool) {
	d.FallbackItems = append(d.FallbackItems, it)
	d.FallbackPos = append(d.FallbackPos, int32(pos))
	if global {
		d.UsedGlobal = true
	}
}

// DependsOn reports whether the row has a fallback entry for item it.
func (d *RowDeps) DependsOn(it dataset.ItemID) bool {
	for _, f := range d.FallbackItems {
		if f == it {
			return true
		}
	}
	return false
}

// DepsSource is the optional Source extension scoped invalidation
// requires: PredictBatchDeps is PredictBatch that also reports the
// row's fallback dependencies, bit-identical to the plain path. The
// row cache and the sorted-list store record the metadata at fill time
// so an ingest can prove most cached rows untouched instead of
// dropping them.
type DepsSource interface {
	Source
	PredictBatchDeps(u dataset.UserID, items []dataset.ItemID) ([]float64, RowDeps)
}

// Compile-time checks: every predictor is a full batch-capable Source.
var (
	_ Source     = (*Predictor)(nil)
	_ Source     = (*ItemPredictor)(nil)
	_ Source     = (*TimeWeightedPredictor)(nil)
	_ Source     = (*CachedSource)(nil)
	_ BatchInto  = (*Predictor)(nil)
	_ BatchInto  = (*ItemPredictor)(nil)
	_ BatchInto  = (*TimeWeightedPredictor)(nil)
	_ BatchInto  = (*CachedSource)(nil)
	_ DepsSource = (*Predictor)(nil)
	_ DepsSource = (*ItemPredictor)(nil)
	_ DepsSource = (*TimeWeightedPredictor)(nil)
)

// batchSlots maps each position of items to an accumulation slot, one
// slot per distinct item, so batch prediction tolerates duplicate
// candidates. slotOf[i] is the slot of items[i]; slotItem[s] is the
// item of slot s.
type batchSlots struct {
	slotOf   []int
	slotItem []dataset.ItemID
	index    map[dataset.ItemID]int
}

func newBatchSlots(items []dataset.ItemID) *batchSlots {
	bs := &batchSlots{
		slotOf: make([]int, len(items)),
		index:  make(map[dataset.ItemID]int, len(items)),
	}
	for i, it := range items {
		s, ok := bs.index[it]
		if !ok {
			s = len(bs.slotItem)
			bs.index[it] = s
			bs.slotItem = append(bs.slotItem, it)
		}
		bs.slotOf[i] = s
	}
	return bs
}
