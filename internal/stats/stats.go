// Package stats provides small numeric helpers shared across the
// reproduction: means, variances, standard errors, normalization and
// histogram utilities. Everything operates on float64 slices and is
// deliberately allocation-light so it can be used inside benchmark
// inner loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (the paper's
// "disagreement variance" uses the population form, dividing by |G|).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// SampleVariance returns the unbiased sample variance (divide by n-1).
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean using the sample
// standard deviation, matching the error bars the paper reports.
func StdErr(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return math.Sqrt(SampleVariance(xs)) / math.Sqrt(float64(n))
}

// Min returns the minimum of xs. It panics on an empty slice because a
// minimum of nothing is a caller bug, not a recoverable condition.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Normalize scales xs in place so its maximum absolute value becomes 1.
// A slice of zeros is left untouched. It returns the scale that was
// applied (1/maxAbs), or 1 when nothing was scaled.
func Normalize(xs []float64) float64 {
	var maxAbs float64
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	inv := 1 / maxAbs
	for i := range xs {
		xs[i] *= inv
	}
	return inv
}

// MeanPairwiseAbsDiff returns the average absolute difference over all
// unordered pairs of xs — the paper's average pairwise disagreement for
// a single item, 2/(|G|(|G|-1)) * Σ |x_u - x_v|.
func MeanPairwiseAbsDiff(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s += math.Abs(xs[i] - xs[j])
		}
	}
	return s * 2 / float64(n*(n-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Interval is a closed real interval [Lo, Hi]. GRECA's bound machinery
// uses intervals for every partially-known score component so that
// correctness holds even when affinities are negative.
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [x, x].
func Point(x float64) Interval { return Interval{x, x} }

// NewInterval returns [lo, hi], swapping the ends if given backwards.
func NewInterval(lo, hi float64) Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{lo, hi}
}

// Valid reports whether the interval is well formed (Lo <= Hi) and free
// of NaNs.
func (iv Interval) Valid() bool {
	return !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi) && iv.Lo <= iv.Hi
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Add returns the interval sum {a+b : a in iv, b in o}.
func (iv Interval) Add(o Interval) Interval {
	return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi}
}

// Sub returns {a-b : a in iv, b in o}.
func (iv Interval) Sub(o Interval) Interval {
	return Interval{iv.Lo - o.Hi, iv.Hi - o.Lo}
}

// Mul returns the interval product {a*b : a in iv, b in o}, the
// standard four-corner formula. This is what makes GRECA's bounds sound
// when affinity drift is negative.
func (iv Interval) Mul(o Interval) Interval {
	p1 := iv.Lo * o.Lo
	p2 := iv.Lo * o.Hi
	p3 := iv.Hi * o.Lo
	p4 := iv.Hi * o.Hi
	lo := math.Min(math.Min(p1, p2), math.Min(p3, p4))
	hi := math.Max(math.Max(p1, p2), math.Max(p3, p4))
	return Interval{lo, hi}
}

// Scale returns {c*a : a in iv}.
func (iv Interval) Scale(c float64) Interval {
	if c >= 0 {
		return Interval{c * iv.Lo, c * iv.Hi}
	}
	return Interval{c * iv.Hi, c * iv.Lo}
}

// AbsDiff returns the interval of |a-b| for a in iv, b in o: the lower
// end is the gap between the intervals (0 when they overlap) and the
// upper end is the largest spread.
func (iv Interval) AbsDiff(o Interval) Interval {
	hi := math.Max(iv.Hi-o.Lo, o.Hi-iv.Lo)
	var lo float64
	switch {
	case iv.Lo > o.Hi:
		lo = iv.Lo - o.Hi
	case o.Lo > iv.Hi:
		lo = o.Lo - iv.Hi
	default:
		lo = 0
	}
	return Interval{lo, hi}
}

// MinI returns the interval of min(a,b).
func (iv Interval) MinI(o Interval) Interval {
	return Interval{math.Min(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}

// Clamp intersects the interval with [lo, hi]; the result is empty-safe
// (collapses to a point on the nearest edge when disjoint).
func (iv Interval) Clamp(lo, hi float64) Interval {
	l := Clamp(iv.Lo, lo, hi)
	h := Clamp(iv.Hi, lo, hi)
	if l > h {
		l = h
	}
	return Interval{l, h}
}

// String implements fmt.Stringer for debugging and test failure output.
func (iv Interval) String() string {
	return fmt.Sprintf("[%.4f, %.4f]", iv.Lo, iv.Hi)
}

// Histogram counts xs into n equal-width buckets spanning [lo, hi].
// Values outside the range clamp to the edge buckets.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}
