package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ProgressItem is one entry of a progressive top-k snapshot: the
// item's guaranteed score bounds at this point of the run.
type ProgressItem struct {
	Item dataset.ItemID
	// Score is the guaranteed lower bound of the consensus score.
	Score float64
	// UpperBound is the guaranteed upper bound.
	UpperBound float64
	// Resolved reports that the bounds have met: the score is exact.
	Resolved bool
}

// Progress is one anytime snapshot of a streaming recommendation.
// Snapshots tighten monotonically: across frames, an item's Score
// never decreases and its UpperBound never increases, and BoundGap
// shrinks toward zero as the run converges.
type Progress struct {
	// Items is the current top-k by lower bound (fewer than K entries
	// early in the run). For an unfinished run it is the best
	// currently guaranteed itemset, not necessarily the final one.
	Items []ProgressItem
	// Round is the round-robin sweep number (Stats.Rounds).
	Round int
	// Stats is the work done so far.
	Stats core.AccessStats
	// Threshold is the best score an unseen item could still reach as
	// of the last stopping check; KthLB the k-th best guaranteed lower
	// bound. The run terminates once Threshold sinks to KthLB and the
	// buffer condition holds.
	Threshold float64
	KthLB     float64
	// Done marks the terminal frame; its Items are the final result.
	Done bool
	// gap caches core.Snapshot.BoundGap at frame construction — one
	// source of truth for the clamping rule.
	gap float64
}

// BoundGap is Threshold − KthLB clamped at 0 — the convergence
// distance still to cover (0 on the terminal frame). It is +Inf on
// frames where the stopping bounds have not been evaluated yet (the
// baseline modes reach their first threshold evaluation late; GRECA
// evaluates every check), so gap-based "good enough" consumers never
// mistake an early frame for convergence.
func (p Progress) BoundGap() float64 { return p.gap }

// RecommendContext is Recommend with a cancellation contract: ctx is
// checked between GRECA stopping checks (Options.CheckInterval rounds
// apart), so a cancelled or deadline-expired context stops the run
// within one check interval. On cancellation it returns the partial
// recommendation assembled from the bounds known so far — Partial set,
// Stats.Stop = core.StopCancelled — alongside ctx's error, so anytime
// consumers still get the best guaranteed itemset of the work already
// done. A nil-error return is a complete run unless Options.Epsilon
// requested an approximate one — epsilon stops return nil errors with
// Partial set and Stats.Stop = core.StopEpsilon, so epsilon callers
// must read Partial, not the error, to distinguish exact from
// approximate.
func (w *World) RecommendContext(ctx context.Context, group []dataset.UserID, opt Options) (*Recommendation, error) {
	return w.RecommendStream(ctx, group, opt, nil)
}

// RecommendStream is RecommendContext with progressive delivery: fn
// receives a Progress frame after every stopping check (thinned to
// every N-th by Options.ProgressEvery; skipped checks build no
// snapshot), ending with a terminal frame (Done true). Returning false
// from fn stops the run early and yields the partial recommendation
// with a nil error — the consumer's own choice is not a failure. fn
// must not retain the frame's Items slice. A nil fn degenerates to
// RecommendContext.
//
// Options.Epsilon adds bound-gap stopping on top: the first check
// certifying an ε-approximate top-k (core.Runner.EpsilonReached — the
// exact threshold + buffer conditions relaxed by ε) ends the run with
// a Partial recommendation (Stats.Stop = core.StopEpsilon) and a nil
// error. The epsilon consumer sees the converging frames like any
// other; the terminal Done frame is not emitted, since the run never
// terminates exactly.
//
// Unless Config.DisableRunSharing is set, identical concurrent calls —
// same group order, same run-shaping options — ride one shared
// core.Runner through the multiplexer: each caller keeps its own
// ProgressEvery thinning, Epsilon policy, and cancellation (the run
// stops only when its last subscriber detaches), and settles with
// exactly the bytes a solo run would have produced. fn is then invoked
// from the shared run's driver goroutine rather than the calling one;
// the call's return happens after all its fn invocations, so
// single-caller code needs no synchronization.
func (w *World) RecommendStream(ctx context.Context, group []dataset.UserID, opt Options, fn func(Progress) bool) (*Recommendation, error) {
	if w.mux == nil {
		return w.recommendStreamDirect(ctx, group, opt, fn)
	}
	if err := opt.fill(); err != nil {
		return nil, err
	}
	sub := w.mux.join(ctx, w, group, opt, fn)
	<-sub.done
	return sub.rec, sub.err
}

// recommendStreamDirect is the unshared driver loop: one caller, one
// problem, one runner. The multiplexer's drive loop replicates this
// ordering exactly; differential tests pin the two together.
func (w *World) recommendStreamDirect(ctx context.Context, group []dataset.UserID, opt Options, fn func(Progress) bool) (*Recommendation, error) {
	prob, items, period, release, err := w.buildProblem(group, &opt)
	if err != nil {
		return nil, err
	}
	defer release()
	r, err := prob.Runner(opt.Mode)
	if err != nil {
		return nil, err
	}
	every := opt.ProgressEvery
	if every <= 0 {
		every = 1
	}
	steps := 0
	for {
		if err := ctx.Err(); err != nil {
			return w.partialRecommendation(r.Snapshot(), items, period, core.StopCancelled), err
		}
		done := r.Step(1)
		steps++
		if fn != nil && (done || steps%every == 0) {
			snap := r.Snapshot()
			if !fn(progressFrom(snap, items)) && !done {
				return w.partialRecommendation(snap, items, period, core.StopCancelled), nil
			}
		}
		// The ε certificate is the exact stopping condition relaxed by
		// ε — threshold AND buffered upper bounds within ε of the k-th
		// lower bound — so the guarantee covers seen candidates too,
		// not just unseen items. EpsilonReached is a cheap scalar
		// compare until the run nears the stop; no snapshot is built
		// on checks that neither emit a frame nor stop.
		if r.EpsilonReached(opt.Epsilon) {
			return w.partialRecommendation(r.Snapshot(), items, period, core.StopEpsilon), nil
		}
		if done {
			break
		}
	}
	res, err := r.Result()
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{Stats: res.Stats, Period: period}
	for _, is := range res.TopK {
		rec.Items = append(rec.Items, ScoredItem{
			Item:       items[is.Key],
			Score:      is.LB,
			UpperBound: is.UB,
		})
	}
	return rec, nil
}

// partialRecommendation maps an interrupted runner snapshot onto the
// facade result type, stamping why the run was cut short
// (StopCancelled for context/consumer interruption, StopEpsilon for
// the bound-gap policy).
func (w *World) partialRecommendation(snap core.Snapshot, items []dataset.ItemID, period int, stop core.StopReason) *Recommendation {
	rec := &Recommendation{Stats: snap.Stats, Period: period, Partial: true}
	rec.Stats.Stop = stop
	for _, si := range snap.TopK {
		rec.Items = append(rec.Items, ScoredItem{
			Item:       items[si.Key],
			Score:      si.LB,
			UpperBound: si.UB,
		})
	}
	return rec
}

// progressFrom maps a runner snapshot onto a wire-facing Progress.
func progressFrom(snap core.Snapshot, items []dataset.ItemID) Progress {
	p := Progress{
		Round:     snap.Stats.Rounds,
		Stats:     snap.Stats,
		Threshold: snap.Threshold,
		KthLB:     snap.KthLB,
		Done:      snap.Done,
		gap:       snap.BoundGap(),
	}
	p.Items = make([]ProgressItem, len(snap.TopK))
	for i, si := range snap.TopK {
		p.Items[i] = ProgressItem{
			Item:       items[si.Key],
			Score:      si.LB,
			UpperBound: si.UB,
			Resolved:   si.Resolved,
		}
	}
	return p
}
