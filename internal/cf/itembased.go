package cf

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dataset"
)

// ItemPredictor is an item-based collaborative filtering predictor:
// the predicted rating of u for item i is the similarity-weighted
// average of u's own ratings on the items most similar to i (adjusted
// cosine item-item similarity). It is an alternative apref source —
// the paper's formulation is agnostic to how absolute preferences are
// produced, and item-based CF is the classic counterpart to the
// user-based predictor the paper evaluates with.
type ItemPredictor struct {
	store *dataset.Store
	k     int

	mu sync.Mutex
	// neighbors[i] caches item i's top-k similar items.
	neighbors map[dataset.ItemID][]itemNeighbor
	// userMean caches each user's mean rating for the adjusted-cosine
	// centering.
	userMean   map[dataset.UserID]float64
	itemMean   map[dataset.ItemID]float64
	globalMean float64
}

type itemNeighbor struct {
	item dataset.ItemID
	sim  float64
}

// NewItemPredictor builds an item-based predictor over a frozen store.
func NewItemPredictor(store *dataset.Store, kNeighbors int) (*ItemPredictor, error) {
	if store == nil || !store.Frozen() {
		return nil, fmt.Errorf("cf: NewItemPredictor requires a frozen store")
	}
	if kNeighbors <= 0 {
		kNeighbors = DefaultNeighbors
	}
	p := &ItemPredictor{
		store:     store,
		k:         kNeighbors,
		neighbors: make(map[dataset.ItemID][]itemNeighbor),
		userMean:  make(map[dataset.UserID]float64),
		itemMean:  make(map[dataset.ItemID]float64),
	}
	var sum float64
	n := 0
	for _, u := range store.Users() {
		rs := store.ByUser(u)
		var s float64
		for _, r := range rs {
			s += r.Value
		}
		if len(rs) > 0 {
			p.userMean[u] = s / float64(len(rs))
		}
		sum += s
		n += len(rs)
	}
	for _, it := range store.Items() {
		rs := store.ByItem(it)
		var s float64
		for _, r := range rs {
			s += r.Value
		}
		if len(rs) > 0 {
			p.itemMean[it] = s / float64(len(rs))
		}
	}
	if n > 0 {
		p.globalMean = sum / float64(n)
	} else {
		p.globalMean = 3
	}
	return p, nil
}

// AdjustedCosine returns the adjusted cosine similarity of two items:
// cosine over co-raters with each rating centered by the rater's mean.
func (p *ItemPredictor) AdjustedCosine(a, b dataset.ItemID) float64 {
	if a == b {
		return 1
	}
	ra, rb := p.store.ByItem(a), p.store.ByItem(b)
	var dot, na, nb float64
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i].User < rb[j].User:
			i++
		case ra[i].User > rb[j].User:
			j++
		default:
			m := p.userMean[ra[i].User]
			x, y := ra[i].Value-m, rb[j].Value-m
			dot += x * y
			na += x * x
			nb += y * y
			i++
			j++
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// itemNeighborsOf returns item it's top-k positively similar items.
func (p *ItemPredictor) itemNeighborsOf(it dataset.ItemID) []itemNeighbor {
	p.mu.Lock()
	if ns, ok := p.neighbors[it]; ok {
		p.mu.Unlock()
		return ns
	}
	p.mu.Unlock()

	all := make([]itemNeighbor, 0, 64)
	for _, other := range p.store.Items() {
		if other == it {
			continue
		}
		if s := p.AdjustedCosine(it, other); s > 0 {
			all = append(all, itemNeighbor{other, s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sim != all[j].sim {
			return all[i].sim > all[j].sim
		}
		return all[i].item < all[j].item
	})
	if len(all) > p.k {
		all = all[:p.k]
	}
	ns := append([]itemNeighbor(nil), all...)
	p.mu.Lock()
	p.neighbors[it] = ns
	p.mu.Unlock()
	return ns
}

// Predict returns the item-based prediction of u for item it on the
// 1..5 scale, with item-mean and global-mean fallbacks.
func (p *ItemPredictor) Predict(u dataset.UserID, it dataset.ItemID) float64 {
	if v, ok := p.store.Value(u, it); ok {
		return v
	}
	var num, den float64
	for _, nb := range p.itemNeighborsOf(it) {
		if v, ok := p.store.Value(u, nb.item); ok {
			num += nb.sim * v
			den += nb.sim
		}
	}
	if den > 0 {
		return clampRating(num / den)
	}
	if m, ok := p.itemMean[it]; ok {
		return m
	}
	return p.globalMean
}

// GlobalMean returns the dataset mean rating.
func (p *ItemPredictor) GlobalMean() float64 { return p.globalMean }
