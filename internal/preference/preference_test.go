package preference

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestCombineExactHandComputed(t *testing.T) {
	// Two users, affinity 0.5, aprefs 0.8 and 0.4, affMax 1.
	// pref(0) = (0.8 + 0.5*0.4) / 2 = 0.5
	// pref(1) = (0.4 + 0.5*0.8) / 2 = 0.4
	aff := func(i, j int) float64 { return 0.5 }
	got := CombineExact([]float64{0.8, 0.4}, aff, 1)
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.4) > 1e-12 {
		t.Errorf("CombineExact = %v", got)
	}
}

func TestCombineAffinityAgnosticIsRescaledApref(t *testing.T) {
	aprefs := []float64{0.9, 0.1, 0.5}
	got := CombineExact(aprefs, func(i, j int) float64 { return 0 }, 1)
	// With zero affinity, pref = apref / (1 + (g-1)).
	for i := range aprefs {
		want := aprefs[i] / 3
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("pref[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestCombineEmptyAndSingle(t *testing.T) {
	if got := Combine(nil, AffinityAgnostic, 1); got != nil {
		t.Errorf("empty Combine = %v", got)
	}
	got := Combine([]stats.Interval{stats.Point(0.7)}, AffinityAgnostic, 1)
	if len(got) != 1 || got[0].Lo != 0.7 {
		t.Errorf("single Combine = %v", got)
	}
}

func TestCombinePanicsOnBadAffMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("affMax 0 did not panic")
		}
	}()
	Combine([]stats.Interval{stats.Point(1)}, AffinityAgnostic, 0)
}

func TestCombineClampsNegativeDrift(t *testing.T) {
	// Strongly negative affinity can push a preference below zero;
	// the model clamps at 0.
	aff := func(i, j int) stats.Interval { return stats.Point(-1) }
	got := Combine([]stats.Interval{stats.Point(0.1), stats.Point(1)}, aff, 1)
	for i, iv := range got {
		if iv.Lo < 0 {
			t.Errorf("pref[%d] = %v below 0", i, iv)
		}
	}
}

// TestQuickCombineSoundness: interval Combine encloses CombineExact at
// sampled points.
func TestQuickCombineSoundness(t *testing.T) {
	f := func(a [4]float64, affRaw [6]float64) bool {
		g := 4
		aprefs := make([]float64, g)
		ivs := make([]stats.Interval, g)
		for i := range aprefs {
			aprefs[i] = math.Abs(math.Mod(a[i], 1))
			ivs[i] = stats.Point(aprefs[i])
		}
		pairVal := func(i, j int) float64 {
			if i > j {
				i, j = j, i
			}
			idx := i*3 + j - 1 // crude unique-ish index into affRaw
			return math.Mod(math.Abs(affRaw[idx%6]), 1)
		}
		affIv := func(i, j int) stats.Interval { return stats.Point(pairVal(i, j)) }
		affPt := pairVal
		enclosed := Combine(ivs, affIv, 1)
		exact := CombineExact(aprefs, affPt, 1)
		for i := range exact {
			if exact[i] < enclosed[i].Lo-1e-9 || exact[i] > enclosed[i].Hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCombineRange: with affinities in [0,1] and aprefs in [0,1],
// preferences stay in [0,1].
func TestQuickCombineRange(t *testing.T) {
	f := func(a [5]float64, affSeed float64) bool {
		ivs := make([]stats.Interval, 5)
		for i := range ivs {
			ivs[i] = stats.Point(math.Abs(math.Mod(a[i], 1)))
		}
		av := math.Abs(math.Mod(affSeed, 1))
		aff := func(i, j int) stats.Interval { return stats.Point(av) }
		got := Combine(ivs, aff, 1)
		for _, iv := range got {
			if iv.Lo < 0 || iv.Hi > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
